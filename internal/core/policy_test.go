package core

import (
	"errors"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/faultx"
	"gqosm/internal/gara"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// newFaultBroker wires a minimal single-pool broker with a fault
// injector and a retry policy installed — the smallest stack that
// exercises the RM-facing call policy end to end.
func newFaultBroker(t *testing.T, clock clockx.Clock, inj *faultx.Injector, p RetryPolicy, rm RMAdapter) (*Broker, *gara.System) {
	t.Helper()
	pool := resource.NewPool("p", resource.Capacity{CPU: 26, MemoryMB: 10240, DiskGB: 200})
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:       "simulation",
		Properties: []registry.Property{registry.NumProp("cpu-nodes", 26)},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := NewBroker(Config{
		Domain: "site-a",
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144},
			Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048},
			BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048},
		},
		Registry:      reg,
		GARA:          g,
		RM:            rm,
		ConfirmWindow: time.Hour,
		Faults:        inj,
		RMPolicy:      p,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b, g
}

// collectDelays reads the backoff schedule a runner would use for
// retries 1..n of one call.
func collectDelays(r *policyRunner, n int) []time.Duration {
	out := make([]time.Duration, 0, n)
	for attempt := 1; attempt <= n; attempt++ {
		out = append(out, r.delay(attempt))
	}
	return out
}

// TestRetryBackoffSchedule is the table test for the deterministic part
// of the policy: exponential doubling from Backoff, capped at
// MaxBackoff (16×Backoff when unset), with zero jitter giving exact
// delays.
func TestRetryBackoffSchedule(t *testing.T) {
	clock := clockx.NewManual(t0)
	b, _ := newFaultBroker(t, clock, nil, RetryPolicy{}, nil)
	cases := []struct {
		name string
		p    RetryPolicy
		want []time.Duration
	}{
		{
			name: "zero backoff retries immediately",
			p:    RetryPolicy{Attempts: 4},
			want: []time.Duration{0, 0, 0, 0},
		},
		{
			name: "doubling capped at explicit MaxBackoff",
			p:    RetryPolicy{Attempts: 6, Backoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
			want: []time.Duration{
				10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
				50 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond,
			},
		},
		{
			name: "default cap is 16x base",
			p:    RetryPolicy{Attempts: 8, Backoff: 10 * time.Millisecond},
			want: []time.Duration{
				10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
				80 * time.Millisecond, 160 * time.Millisecond, 160 * time.Millisecond,
				160 * time.Millisecond, 160 * time.Millisecond,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newPolicyRunner(b, tc.p)
			got := collectDelays(r, len(tc.want))
			for i, want := range tc.want {
				if got[i] != want {
					t.Errorf("retry %d: delay = %v, want %v (schedule %v)", i+1, got[i], want, got)
				}
			}
		})
	}
}

// TestRetryBackoffJitterDeterministic: with jitter enabled the schedule
// is spread but still a pure function of the seed — two runners with
// the same seed agree delay for delay, and a different seed diverges.
func TestRetryBackoffJitterDeterministic(t *testing.T) {
	clock := clockx.NewManual(t0)
	b, _ := newFaultBroker(t, clock, nil, RetryPolicy{}, nil)
	p := RetryPolicy{Attempts: 8, Backoff: 100 * time.Millisecond, JitterFrac: 0.5, Seed: 42}

	d1 := collectDelays(newPolicyRunner(b, p), 8)
	d2 := collectDelays(newPolicyRunner(b, p), 8)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i+1, d1, d2)
		}
	}

	base := collectDelays(newPolicyRunner(b, RetryPolicy{Attempts: 8, Backoff: 100 * time.Millisecond}), 8)
	for i, d := range d1 {
		lo := base[i] / 2
		hi := base[i] + base[i]/2
		if d < lo || d > hi {
			t.Errorf("retry %d: jittered delay %v outside [%v, %v]", i+1, d, lo, hi)
		}
	}

	p.Seed = 43
	d3 := collectDelays(newPolicyRunner(b, p), 8)
	same := true
	for i := range d1 {
		if d1[i] != d3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter schedules")
	}
}

// TestRetryExhaustionSurfacesErrRMUnavailable: a site failing with
// transient injected errors burns the whole budget, the call reports
// ErrRMUnavailable, and the budget counters record each retry and the
// exhaustion.
func TestRetryExhaustionSurfacesErrRMUnavailable(t *testing.T) {
	clock := clockx.NewManual(t0)
	inj := faultx.New(1, clock)
	inj.SetPlan("test.op", faultx.Plan{Rate: 1, Kinds: []faultx.Kind{faultx.KindError}})
	b, _ := newFaultBroker(t, clock, inj, RetryPolicy{Attempts: 3}, nil)

	ran := 0
	err := b.pol.call("test.op", func() error { ran++; return nil })
	if !errors.Is(err, ErrRMUnavailable) {
		t.Fatalf("err = %v, want ErrRMUnavailable", err)
	}
	if ran != 0 {
		t.Errorf("op ran %d time(s) through KindError faults, want 0", ran)
	}
	retries, _, unavailable := b.RetryStats()
	if retries != 2 {
		t.Errorf("retries = %d, want 2 (attempts 2 and 3)", retries)
	}
	if unavailable != 1 {
		t.Errorf("unavailable = %d, want 1", unavailable)
	}
}

// TestRetryBusinessErrorPassesThrough: definitive answers (a canceled
// reservation, a full allocator) are not transient — they return on the
// attempt that produced them, with no retries burned.
func TestRetryBusinessErrorPassesThrough(t *testing.T) {
	clock := clockx.NewManual(t0)
	b, _ := newFaultBroker(t, clock, nil, RetryPolicy{Attempts: 5}, nil)

	ran := 0
	err := b.pol.call("test.op", func() error { ran++; return gara.ErrUnknownHandle })
	if !errors.Is(err, gara.ErrUnknownHandle) {
		t.Fatalf("err = %v, want the business error itself", err)
	}
	if errors.Is(err, ErrRMUnavailable) {
		t.Fatal("business error misreported as RM unavailability")
	}
	if ran != 1 {
		t.Errorf("op ran %d time(s), want exactly 1", ran)
	}
	if retries, _, _ := b.RetryStats(); retries != 0 {
		t.Errorf("retries = %d, want 0", retries)
	}
}

// TestRetryHangChargesTimeout: a synchronous hang-until-deadline fault
// counts as a timed-out attempt and charges the full per-attempt
// deadline to the virtual latency accounting, keeping "p95 under
// faults" deterministic on a manual clock.
func TestRetryHangChargesTimeout(t *testing.T) {
	clock := clockx.NewManual(t0)
	inj := faultx.New(1, clock)
	inj.SetPlan("test.op", faultx.Plan{Rate: 1, Kinds: []faultx.Kind{faultx.KindHang}})
	b, _ := newFaultBroker(t, clock, inj, RetryPolicy{Attempts: 2, Timeout: 2 * time.Second}, nil)

	err := b.pol.call("test.op", func() error { return nil })
	if !errors.Is(err, ErrRMUnavailable) {
		t.Fatalf("err = %v, want ErrRMUnavailable", err)
	}
	if _, timeouts, _ := b.RetryStats(); timeouts != 2 {
		t.Errorf("timeouts = %d, want 2", timeouts)
	}
	if got := inj.VirtualP95MS(); got != 2000 {
		t.Errorf("virtual p95 = %vms, want 2000 (the charged deadline)", got)
	}
}

// TestCallCreateAdoptsCommittedReservation: a retried two-phase create
// whose first reply was lost must find the committed reservation by its
// idempotency tag and adopt it — the create function must not run
// again.
func TestCallCreateAdoptsCommittedReservation(t *testing.T) {
	clock := clockx.NewManual(t0)
	b, g := newFaultBroker(t, clock, nil, RetryPolicy{Attempts: 3}, nil)

	committed, err := g.Create(`&(reservation-type="compute")(count=1)`, t0, t5, "sla-42")
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.pol.callCreate("gara.create", "sla-42", func() (gara.Handle, error) {
		t.Fatal("create ran despite a live reservation with the tag")
		return "", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h != committed {
		t.Fatalf("adopted handle %s, want %s", h, committed)
	}
}

// TestCallCreateNeverDoubleCommits: under a 100% partial-failure plan
// (every create commits, every reply is lost) a budgeted callCreate
// fails — but leaves exactly ONE committed reservation behind, because
// the retry consulted the tag before re-creating. Once the fault
// clears, the next call adopts that same reservation.
func TestCallCreateNeverDoubleCommits(t *testing.T) {
	clock := clockx.NewManual(t0)
	inj := faultx.New(1, clock)
	inj.SetPlan("gara.create", faultx.Plan{Rate: 1, Kinds: []faultx.Kind{faultx.KindPartial}})
	b, g := newFaultBroker(t, clock, inj, RetryPolicy{Attempts: 3}, nil)

	create := func() (gara.Handle, error) {
		return g.Create(`&(reservation-type="compute")(count=1)`, t0, t5, "sla-7")
	}
	if _, err := b.pol.callCreate("gara.create", "sla-7", create); !errors.Is(err, ErrRMUnavailable) {
		t.Fatalf("err = %v, want ErrRMUnavailable under 100%% reply loss", err)
	}
	countLive := func() int {
		n := 0
		for _, r := range g.Reservations() {
			if r.Tag == "sla-7" && r.Status != gara.StatusCanceled {
				n++
			}
		}
		return n
	}
	if n := countLive(); n != 1 {
		t.Fatalf("%d live reservation(s) tagged sla-7 after retries, want exactly 1", n)
	}

	inj.SetPlan("gara.create", faultx.Plan{})
	h, err := b.pol.callCreate("gara.create", "sla-7", func() (gara.Handle, error) {
		t.Fatal("create ran again instead of adopting")
		return "", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := g.FindByTag("sla-7"); h != want {
		t.Fatalf("adopted %s, want %s", h, want)
	}
	if n := countLive(); n != 1 {
		t.Fatalf("%d live reservation(s) after adoption, want 1", n)
	}
}

// blockedRM would stall the monitor forever if it were ever reached;
// the hang fault fires first, so reaching it at all is a test failure.
type blockedRM struct{ calls int }

func (r *blockedRM) TryRectify(sla.ID, *sla.Document, resource.Capacity) bool {
	r.calls++
	return true
}

// TestHungRMProbeDoesNotStallTick is the regression test for the
// monitor stall: a degradation callback probing a hung RM used to block
// the tick (and with it all expiry and optimizer work) forever. Under
// the per-attempt timeout the probe gives up after Timeout of wall
// clock and the scenario-3 ladder continues.
func TestHungRMProbeDoesNotStallTick(t *testing.T) {
	clock := clockx.Real()
	inj := faultx.New(1, clock)
	inj.SetPlan("rm.rectify", faultx.Plan{
		Rate: 1, Kinds: []faultx.Kind{faultx.KindHang}, BlockOnHang: true,
	})
	t.Cleanup(inj.ReleaseHangs)
	rm := &blockedRM{}
	b, _ := newFaultBroker(t, clock, inj, RetryPolicy{Attempts: 1, Timeout: 50 * time.Millisecond}, rm)

	offer, err := b.RequestService(Request{
		Service: "simulation", Client: "c", Class: sla.ClassGuaranteed,
		Spec:  sla.NewSpec(sla.Exact(resource.CPU, 10)),
		Start: clock.Now(), End: clock.Now().Add(5 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		b.handleDegradation(id, resource.Nodes(6)) // the monitor/SLA-Verif path
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("degradation handling stalled on the hung RM probe")
	}

	if rm.calls != 0 {
		t.Errorf("RM adapter ran %d time(s) through a blocking hang", rm.calls)
	}
	if _, timeouts, _ := b.RetryStats(); timeouts == 0 {
		t.Error("hung probe not accounted as a call timeout")
	}
	if got := b.Violations(id); got == 0 {
		t.Error("adaptation ladder did not continue after the probe timed out")
	}
}
