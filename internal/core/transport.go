package core

import (
	"encoding/xml"
	"errors"
	"fmt"
	"time"

	"gqosm/internal/obs"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
	"gqosm/internal/soapx"
	"gqosm/internal/xmlmsg"
)

// This file exposes the broker over SOAP/HTTP (Fig. 5: "clients send XML
// messages to the AQoS broker using SOAP over HTTP"): Mount installs the
// handlers; Client is the typed counterpart used by qosctl and remote
// applications.

// Mount installs the broker's SOAP handlers on the mux: service_request,
// sla_action (accept / reject / invoke / terminate / verify /
// accept_promotion — the Fig. 7 client actions), and best_effort_request.
func (b *Broker) Mount(mux *soapx.Mux) {
	// Per-transport traffic counters: the JSON API registers the same
	// family with transport="http", so dashboards see the split.
	count := func(op string) *obs.Counter {
		return b.obs.Counter("gqosm_transport_requests_total",
			"Requests served per transport and operation",
			"transport", "soap", "op", op)
	}
	serviceRequests := count("service_request")
	slaActions := count("sla_action")
	renegotiations := count("renegotiate_request")
	loadReports := count("load_report_request")
	bestEfforts := count("best_effort_request")

	mux.Handle("service_request", func(body []byte) (any, error) {
		serviceRequests.Inc()
		var req xmlmsg.ServiceRequestXML
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		r, err := decodeRequest(req)
		if err != nil {
			return nil, err
		}
		offer, err := b.RequestService(r)
		if err != nil {
			return nil, err
		}
		return &xmlmsg.ServiceOfferXML{
			SLA:     sla.EncodeDocument(offer.SLA),
			Price:   offer.Price,
			Expires: offer.Expires.Format(xmlmsg.TimeLayout),
		}, nil
	})

	mux.Handle("sla_action", func(body []byte) (any, error) {
		slaActions.Inc()
		var req xmlmsg.SLAActionXML
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		id := sla.ID(req.SLAID)
		switch req.Action {
		case "accept":
			if err := b.Accept(id); err != nil {
				return nil, err
			}
		case "reject":
			if err := b.Reject(id); err != nil {
				return nil, err
			}
		case "invoke":
			job, err := b.Invoke(id)
			if err != nil {
				return nil, err
			}
			return &xmlmsg.AckXML{OK: true, Detail: fmt.Sprintf("job %s pid %d", job.ID, job.PID)}, nil
		case "terminate":
			if err := b.Terminate(id, nonEmpty(req.Reason, "terminated by client")); err != nil {
				return nil, err
			}
		case "verify":
			rep, err := b.Verify(id)
			if err != nil {
				return nil, err
			}
			return &rep.XML, nil
		case "accept_promotion":
			if err := b.AcceptPromotion(id); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: unknown sla_action %q", req.Action)
		}
		return &xmlmsg.AckXML{OK: true}, nil
	})

	mux.Handle("renegotiate_request", func(body []byte) (any, error) {
		renegotiations.Inc()
		var req xmlmsg.RenegotiateRequestXML
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		spec, err := xmlmsg.DecodeSpec(req.Params, req.SourceIP, req.DestIP, req.MaxLoss)
		if err != nil {
			return nil, err
		}
		res, err := b.Renegotiate(sla.ID(req.SLAID), spec)
		if err != nil {
			return nil, err
		}
		return &xmlmsg.AckXML{
			OK: true,
			Detail: fmt.Sprintf("reallocated %v -> %v, price %+.2f",
				res.Old, res.New, res.PriceDelta),
		}, nil
	})

	mux.Handle("load_report_request", func(body []byte) (any, error) {
		loadReports.Inc()
		r := b.LoadReport()
		return &xmlmsg.LoadReportXML{
			Domain:     r.Domain,
			Sessions:   r.Sessions,
			Load:       r.Load,
			Recovering: r.Recovering,
		}, nil
	})

	mux.Handle("best_effort_request", func(body []byte) (any, error) {
		bestEfforts.Inc()
		var req xmlmsg.BestEffortRequestXML
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		if req.Release {
			if err := b.BestEffortRelease(req.Client); err != nil {
				return nil, err
			}
			return &xmlmsg.AckXML{OK: true}, nil
		}
		amount := resource.Capacity{CPU: req.CPU, MemoryMB: req.Memory, DiskGB: req.Disk}
		if err := b.BestEffortRequest(req.Client, amount); err != nil {
			return nil, err
		}
		return &xmlmsg.AckXML{OK: true, Detail: "granted " + amount.String()}, nil
	})
}

func decodeRequest(req xmlmsg.ServiceRequestXML) (Request, error) {
	class, err := sla.ParseClass(req.Class)
	if err != nil {
		return Request{}, err
	}
	spec, err := xmlmsg.DecodeSpec(req.Params, req.SourceIP, req.DestIP, req.MaxLoss)
	if err != nil {
		return Request{}, err
	}
	start, err := time.Parse(xmlmsg.TimeLayout, req.Start)
	if err != nil {
		return Request{}, fmt.Errorf("core: bad Start: %w", err)
	}
	end, err := time.Parse(xmlmsg.TimeLayout, req.End)
	if err != nil {
		return Request{}, fmt.Errorf("core: bad End: %w", err)
	}
	return Request{
		Service:           req.Service,
		Client:            req.Client,
		Class:             class,
		Spec:              spec,
		Start:             start,
		End:               end,
		Budget:            req.Budget,
		AcceptDegradation: req.AcceptDegradation,
		AcceptTermination: req.AcceptTermination,
		PromotionOptIn:    req.PromotionOptIn,
	}, nil
}

// Client is a typed SOAP client for a remote AQoS broker.
type Client struct {
	SOAP soapx.Client
	// Retries is the number of extra attempts after a transport-level
	// failure (connection refused/reset, an injected wire fault): the
	// request may never have reached the broker, so resending is the
	// right move. SOAP faults are definitive answers and never retried.
	// 0 keeps the historical single attempt.
	Retries int
	// RetryDelay is the pause between attempts, in real time — the
	// client talks to live endpoints, not a simulated clock.
	RetryDelay time.Duration
}

// NewClient returns a client for the broker at endpoint.
func NewClient(endpoint string) *Client {
	return &Client{SOAP: soapx.Client{Endpoint: endpoint}}
}

// call sends one SOAP request under the client's transport-retry
// budget.
func (c *Client) call(request, response any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.SOAP.Call(request, response)
		if err == nil || !errors.Is(err, soapx.ErrTransport) || attempt >= c.Retries {
			return err
		}
		if c.RetryDelay > 0 {
			time.Sleep(c.RetryDelay)
		}
	}
}

// RequestService sends a service_request and returns the offer.
func (c *Client) RequestService(r Request) (*xmlmsg.ServiceOfferXML, error) {
	req := xmlmsg.ServiceRequestXML{
		Service:           r.Service,
		Client:            r.Client,
		Class:             r.Class.String(),
		Params:            xmlmsg.EncodeSpec(r.Spec),
		SourceIP:          r.Spec.SourceIP,
		DestIP:            r.Spec.DestIP,
		Start:             r.Start.Format(xmlmsg.TimeLayout),
		End:               r.End.Format(xmlmsg.TimeLayout),
		Budget:            r.Budget,
		AcceptDegradation: r.AcceptDegradation,
		AcceptTermination: r.AcceptTermination,
		PromotionOptIn:    r.PromotionOptIn,
	}
	if r.Spec.MaxPacketLossPct > 0 {
		req.MaxLoss = fmt.Sprintf("LessThan %g%%", r.Spec.MaxPacketLossPct)
	}
	var resp xmlmsg.ServiceOfferXML
	if err := c.call(&req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Act performs an sla_action ("accept", "reject", "invoke", "terminate",
// "accept_promotion") and returns the acknowledgement detail.
func (c *Client) Act(id sla.ID, action, reason string) (string, error) {
	var resp xmlmsg.AckXML
	err := c.call(&xmlmsg.SLAActionXML{SLAID: string(id), Action: action, Reason: reason}, &resp)
	if err != nil {
		return "", err
	}
	return resp.Detail, nil
}

// Verify requests an explicit SLA conformance test, returning the Table-3
// document.
func (c *Client) Verify(id sla.ID) (*QoSLevelsXML, error) {
	var resp QoSLevelsXML
	if err := c.call(&xmlmsg.SLAActionXML{SLAID: string(id), Action: "verify"}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// LoadReport fetches the remote broker's current load for front-tier
// placement.
func (c *Client) LoadReport() (LoadReport, error) {
	var resp xmlmsg.LoadReportXML
	if err := c.call(&xmlmsg.LoadReportRequestXML{}, &resp); err != nil {
		return LoadReport{}, err
	}
	return LoadReport{
		Domain:     resp.Domain,
		Sessions:   resp.Sessions,
		Load:       resp.Load,
		Recovering: resp.Recovering,
	}, nil
}

// decodeOfferSLA converts a wire offer back into the SLA document (used
// by federation peers).
func decodeOfferSLA(resp *xmlmsg.ServiceOfferXML) (*sla.Document, error) {
	doc, err := sla.DecodeDocument(resp.SLA)
	if err != nil {
		return nil, fmt.Errorf("core: decode peer offer: %w", err)
	}
	return doc, nil
}

// Renegotiate replaces a live session's QoS specification remotely.
func (c *Client) Renegotiate(id sla.ID, spec sla.Spec) (string, error) {
	req := xmlmsg.RenegotiateRequestXML{
		SLAID:    string(id),
		Params:   xmlmsg.EncodeSpec(spec),
		SourceIP: spec.SourceIP,
		DestIP:   spec.DestIP,
	}
	if spec.MaxPacketLossPct > 0 {
		req.MaxLoss = fmt.Sprintf("LessThan %g%%", spec.MaxPacketLossPct)
	}
	var resp xmlmsg.AckXML
	if err := c.call(&req, &resp); err != nil {
		return "", err
	}
	return resp.Detail, nil
}

// BestEffort requests (or releases) best-effort capacity.
func (c *Client) BestEffort(client string, amount resource.Capacity, release bool) error {
	req := xmlmsg.BestEffortRequestXML{
		Client:  client,
		CPU:     amount.CPU,
		Memory:  amount.MemoryMB,
		Disk:    amount.DiskGB,
		Release: release,
	}
	var resp xmlmsg.AckXML
	return c.call(&req, &resp)
}
