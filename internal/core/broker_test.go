package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/mds"
	"gqosm/internal/nrm"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

var (
	t0 = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	t5 = t0.Add(5 * time.Hour)
)

// harness wires a complete single-domain G-QoSM stack in process: the
// Fig. 5 testbed without HTTP.
type harness struct {
	clock  *clockx.Manual
	broker *Broker
	pool   *resource.Pool
	topo   *nrm.Topology
	netMgr *nrm.Manager
	reg    *registry.Registry
	gramM  *gram.Manager
	g      *gara.System
}

func newHarness(t testing.TB, mods ...func(*Config)) *harness {
	t.Helper()
	clock := clockx.NewManual(t0)

	pool := resource.NewPool("sgi", resource.Capacity{CPU: 26, MemoryMB: 10240, DiskGB: 200, BandwidthMbps: 1100})

	topo := nrm.NewTopology()
	for _, d := range []struct{ name, cidr string }{
		{"site-a", "192.200.168.0/24"},
		{"site-b", "135.200.50.0/24"},
		{"site-c", "10.10.0.0/16"},
	} {
		if err := topo.AddDomain(d.name, d.cidr); err != nil {
			t.Fatal(err)
		}
	}
	if err := topo.AddLink("site-a", "site-b", 1000); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("site-a", "site-c", 100); err != nil {
		t.Fatal(err)
	}
	netMgr := nrm.NewManager("site-a", topo)

	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	g.RegisterManager(gara.NewNetworkManager(netMgr))

	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:     "simulation",
		Provider: "site-a",
		Properties: []registry.Property{
			registry.NumProp("cpu-nodes", 26),
			registry.NumProp("memory-mb", 10240),
			registry.NumProp("disk-gb", 200),
			registry.NumProp("bandwidth-mbps", 1000),
		},
	}); err != nil {
		t.Fatal(err)
	}

	dir := mds.NewDirectory()
	if err := dir.Register("sgi", func() mds.Attributes {
		return mds.Attributes{"cpu-free": "26"}
	}); err != nil {
		t.Fatal(err)
	}

	gramM := gram.NewManager(clock)
	t.Cleanup(gramM.Close)

	cfg := Config{
		Domain: "site-a",
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120, BandwidthMbps: 700},
			Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
			BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40, BandwidthMbps: 200},
		},
		Registry:      reg,
		GARA:          g,
		GRAM:          gramM,
		NRM:           netMgr,
		MDS:           dir,
		ConfirmWindow: 2 * time.Minute,
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	broker, err := NewBroker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(broker.Close)
	return &harness{clock: clock, broker: broker, pool: pool, topo: topo, netMgr: netMgr, reg: reg, gramM: gramM, g: g}
}

// guaranteedRequest is a §5.6-style composite request: 10 nodes, 2 GB,
// 15 GB disk plus a 45 Mbps flow from site C.
func guaranteedRequest() Request {
	spec := sla.NewSpec(
		sla.Exact(resource.CPU, 10),
		sla.Exact(resource.MemoryMB, 2048),
		sla.Exact(resource.DiskGB, 15),
		sla.Exact(resource.BandwidthMbps, 45),
	)
	spec.SourceIP = "10.10.3.4"
	spec.DestIP = "192.200.168.33"
	return Request{
		Service: "simulation",
		Client:  "site-c-scientists",
		Class:   sla.ClassGuaranteed,
		Spec:    spec,
		Start:   t0,
		End:     t5,
	}
}

func controlledRequest(client string) Request {
	return Request{
		Service: "simulation",
		Client:  client,
		Class:   sla.ClassControlledLoad,
		Spec: sla.NewSpec(
			sla.Range(resource.CPU, 2, 8),
			sla.Range(resource.MemoryMB, 512, 2048),
		),
		Start:             t0,
		End:               t5,
		AcceptDegradation: true,
		PromotionOptIn:    true,
	}
}

func TestFullSessionLifecycle(t *testing.T) {
	// The Fig. 2 sequence: QueryServices → RequestService →
	// resource queries → SLA negotiation → allocation → invocation →
	// QoS management.
	h := newHarness(t)
	b := h.broker

	offer, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if offer.SLA.State != sla.StateProposed {
		t.Errorf("offer state = %v", offer.SLA.State)
	}
	if offer.Price <= 0 {
		t.Errorf("price = %g", offer.Price)
	}
	want := resource.Capacity{CPU: 10, MemoryMB: 2048, DiskGB: 15, BandwidthMbps: 45}
	if !offer.SLA.Allocated.Equal(want) {
		t.Errorf("allocated = %v, want %v", offer.SLA.Allocated, want)
	}
	// Resources are temporarily reserved: the pool holds the compute
	// part, the NRM the flow.
	if got := h.pool.InUse(t0).CPU; got != 10 {
		t.Errorf("pool CPU in use = %g", got)
	}
	if len(h.netMgr.Flows()) != 1 {
		t.Errorf("flows = %d", len(h.netMgr.Flows()))
	}

	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	doc, err := b.Session(id)
	if err != nil || doc.State != sla.StateEstablished {
		t.Fatalf("after accept: %v, %v", doc, err)
	}
	// The SLA is in the repository.
	if _, err := b.Repo().Get(id); err != nil {
		t.Errorf("repo: %v", err)
	}
	// The client was charged.
	if got := b.Ledger().NetRevenue(); got != offer.Price {
		t.Errorf("revenue = %g, want %g", got, offer.Price)
	}

	job, err := b.Invoke(id)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if job.State != gram.StateActive {
		t.Errorf("job state = %v", job.State)
	}
	doc, _ = b.Session(id)
	if doc.State != sla.StateActive {
		t.Errorf("session state = %v", doc.State)
	}

	rep, err := b.Verify(id)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !rep.Conforms {
		t.Errorf("healthy session does not conform: %+v", rep)
	}
	if rep.XML.Network == nil || !strings.Contains(rep.XML.Network.Bandwidth, "45") {
		t.Errorf("Table-3 network = %+v", rep.XML.Network)
	}

	if err := b.Terminate(id, "service completed"); err != nil {
		t.Fatalf("Terminate: %v", err)
	}
	if got := h.pool.InUse(h.clock.Now()).CPU; got != 0 {
		t.Errorf("pool CPU after terminate = %g", got)
	}
	if len(h.netMgr.Flows()) != 0 {
		t.Error("flow leaked after terminate")
	}
	doc, _ = b.Session(id)
	if doc.State != sla.StateTerminated {
		t.Errorf("final state = %v", doc.State)
	}
	// Fig. 6: the activity log narrates the session.
	var kinds []string
	for _, e := range b.Events() {
		kinds = append(kinds, e.Kind)
	}
	joined := strings.Join(kinds, ",")
	for _, want := range []string{"discovery", "offer", "sla", "invoke", "verify", "clearing"} {
		if !strings.Contains(joined, want) {
			t.Errorf("activity log missing %q: %v", want, kinds)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	h := newHarness(t)
	base := guaranteedRequest()

	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"no service", func(r *Request) { r.Service = "" }},
		{"best effort class", func(r *Request) { r.Class = sla.ClassBestEffort }},
		{"no params", func(r *Request) { r.Spec = sla.Spec{} }},
		{"bad window", func(r *Request) { r.End = r.Start }},
		{"promotion on guaranteed", func(r *Request) { r.PromotionOptIn = true }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			req := base
			tt.mutate(&req)
			if _, err := h.broker.RequestService(req); err == nil {
				t.Error("invalid request accepted")
			}
		})
	}
}

func TestDiscoveryNoMatch(t *testing.T) {
	h := newHarness(t)
	req := guaranteedRequest()
	req.Service = "teleportation"
	if _, err := h.broker.RequestService(req); !errors.Is(err, ErrNoService) {
		t.Errorf("err = %v, want ErrNoService", err)
	}
	// A QoS floor no registered service advertises also fails discovery.
	req = guaranteedRequest()
	req.Spec.Params[resource.CPU] = sla.Exact(resource.CPU, 500)
	if _, err := h.broker.RequestService(req); !errors.Is(err, ErrNoService) {
		t.Errorf("err = %v, want ErrNoService", err)
	}
}

func TestBudget(t *testing.T) {
	h := newHarness(t)

	// Guaranteed over budget: rejected outright.
	req := guaranteedRequest()
	req.Budget = 1
	if _, err := h.broker.RequestService(req); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", err)
	}

	// Controlled-load degrades to the floor to fit the budget.
	cl := controlledRequest("cheap")
	floorPrice := h.broker.prices.Cost(sla.ClassControlledLoad, cl.Spec.Floor())
	bestPrice := h.broker.prices.Cost(sla.ClassControlledLoad, cl.Spec.Best())
	cl.Budget = (floorPrice + bestPrice) / 2
	offer, err := h.broker.RequestService(cl)
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if !offer.SLA.Allocated.Equal(cl.Spec.Floor()) {
		t.Errorf("allocated = %v, want floor %v", offer.SLA.Allocated, cl.Spec.Floor())
	}
	if offer.Price > cl.Budget {
		t.Errorf("price %g > budget %g", offer.Price, cl.Budget)
	}

	// Even the floor over budget: rejected.
	cl2 := controlledRequest("broke")
	cl2.Budget = floorPrice / 10
	if _, err := h.broker.RequestService(cl2); !errors.Is(err, ErrOverBudget) {
		t.Errorf("err = %v, want ErrOverBudget", err)
	}
}

func TestOfferExpiresWithoutConfirmation(t *testing.T) {
	// §3.1: "If the RS does not receive such confirmation within the
	// pre-defined period of time, it instructs GARA to cancel the
	// reservation."
	h := newHarness(t)
	offer, err := h.broker.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(3 * time.Minute)
	doc, err := h.broker.Session(offer.SLA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.State != sla.StateTerminated {
		t.Fatalf("state after window = %v, want terminated", doc.State)
	}
	if got := h.pool.InUse(h.clock.Now()).CPU; got != 0 {
		t.Errorf("pool still holds %g CPU after expiry", got)
	}
	if err := h.broker.Accept(offer.SLA.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("Accept after expiry err = %v", err)
	}
}

func TestRejectReleasesResources(t *testing.T) {
	h := newHarness(t)
	offer, err := h.broker.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.broker.Reject(offer.SLA.ID); err != nil {
		t.Fatalf("Reject: %v", err)
	}
	if got := h.pool.InUse(t0).CPU; got != 0 {
		t.Errorf("pool holds %g CPU after reject", got)
	}
	if err := h.broker.Reject(offer.SLA.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("double Reject err = %v", err)
	}
	// The confirmation timer was stopped (no pending timers beyond
	// GRAM's none).
	if h.clock.PendingTimers() != 0 {
		t.Errorf("PendingTimers = %d", h.clock.PendingTimers())
	}
}

func TestScenario1CompensationByDegradation(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	// Fill the guaranteed side with two willing-to-degrade
	// controlled-load sessions (8 CPU, then the remaining 7).
	var ids []sla.ID
	for _, c := range []string{"c1", "c2"} {
		offer, err := b.RequestService(controlledRequest(c))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Accept(offer.SLA.ID); err != nil {
			t.Fatal(err)
		}
		if !offer.SLA.Spec.Accepts(offer.SLA.Allocated) {
			t.Fatalf("controlled-load allocation %v outside SLA", offer.SLA.Allocated)
		}
		ids = append(ids, offer.SLA.ID)
	}
	// The guaranteed side is now full (15 CPU). A new request for 10
	// requires scenario-1 compensation.
	offer, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatalf("RequestService with compensation: %v", err)
	}
	if !offer.Compensated {
		t.Error("offer not marked compensated")
	}
	// Compensation is minimal: at least one willing session was degraded
	// to its floor, none below it (their SLAs still hold), and it stops
	// as soon as the new request fits.
	degraded := 0
	for _, id := range ids {
		doc, err := b.Session(id)
		if err != nil {
			t.Fatal(err)
		}
		if !doc.Spec.Accepts(doc.Allocated) {
			t.Errorf("%s degraded below SLA: %v", id, doc.Allocated)
		}
		if doc.Allocated.Equal(doc.Spec.Floor()) {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("no willing session was degraded")
	}
}

func TestScenario1CompensationRefusedWithoutVolunteers(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	// An unwilling guaranteed session occupying most of the pool.
	big := guaranteedRequest()
	big.Spec = sla.NewSpec(sla.Exact(resource.CPU, 14))
	offer, err := b.RequestService(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}

	req := guaranteedRequest()
	req.Spec = sla.NewSpec(sla.Exact(resource.CPU, 10))
	if _, err := b.RequestService(req); err == nil {
		t.Fatal("request admitted without capacity or volunteers")
	}
}

func TestScenario1TerminationCompensation(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	victim := controlledRequest("victim")
	victim.Spec = sla.NewSpec(sla.Range(resource.CPU, 12, 14))
	victim.AcceptDegradation = false
	victim.AcceptTermination = true
	victim.PromotionOptIn = false
	offer, err := b.RequestService(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}

	req := guaranteedRequest()
	req.Spec = sla.NewSpec(sla.Exact(resource.CPU, 10))
	offer2, err := b.RequestService(req)
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if !offer2.Compensated {
		t.Error("not marked compensated")
	}
	doc, _ := b.Session(offer.SLA.ID)
	if doc.State != sla.StateTerminated {
		t.Errorf("victim state = %v, want terminated", doc.State)
	}
}

func TestScenario2RestoreAndPromotions(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	// Two controlled-load sessions at best quality (range [2,6] so both
	// fit C_G together).
	narrow := func(client string) Request {
		r := controlledRequest(client)
		r.Spec = sla.NewSpec(sla.Range(resource.CPU, 2, 6))
		return r
	}
	o1, err := b.RequestService(narrow("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(o1.SLA.ID); err != nil {
		t.Fatal(err)
	}
	o2, err := b.RequestService(narrow("c2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(o2.SLA.ID); err != nil {
		t.Fatal(err)
	}

	// A guaranteed arrival forces degradation (scenario 1)...
	big := guaranteedRequest()
	big.Spec = sla.NewSpec(sla.Exact(resource.CPU, 10))
	o3, err := b.RequestService(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(o3.SLA.ID); err != nil {
		t.Fatal(err)
	}
	d1, _ := b.Session(o1.SLA.ID)
	if !d1.Allocated.Equal(d1.Spec.Floor()) {
		t.Fatalf("c1 not degraded: %v", d1.Allocated)
	}

	// ... and its termination restores them (scenario 2a).
	if err := b.Terminate(o3.SLA.ID, "completed"); err != nil {
		t.Fatal(err)
	}
	d1, _ = b.Session(o1.SLA.ID)
	d2, _ := b.Session(o2.SLA.ID)
	if !d1.Allocated.Equal(d1.Spec.Best()) || !d2.Allocated.Equal(d2.Spec.Best()) {
		t.Errorf("restoration failed: c1=%v c2=%v", d1.Allocated, d2.Allocated)
	}
}

func TestScenario2PromotionOfferAndAccept(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	// A controlled-load session admitted while a big guaranteed session
	// squeezes it down.
	big := guaranteedRequest()
	big.Spec = sla.NewSpec(sla.Exact(resource.CPU, 13))
	ob, err := b.RequestService(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(ob.SLA.ID); err != nil {
		t.Fatal(err)
	}

	cl := controlledRequest("upgrader")
	oc, err := b.RequestService(cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(oc.SLA.ID); err != nil {
		t.Fatal(err)
	}
	docBefore, _ := b.Session(oc.SLA.ID)
	if docBefore.Allocated.Equal(docBefore.Spec.Best()) {
		t.Fatal("test setup: controlled-load should start below best")
	}
	priceBefore := docBefore.Price

	// Big session ends: a promotion offer appears (the optimizer may
	// already upgrade the allocation; the promotion then covers any
	// remaining headroom, or the optimizer upgrade absorbed it).
	if err := b.Terminate(ob.SLA.ID, "completed"); err != nil {
		t.Fatal(err)
	}
	promos := b.Promotions()
	doc, _ := b.Session(oc.SLA.ID)
	if len(promos) == 0 {
		// The optimizer must have upgraded it instead.
		if !doc.Allocated.Equal(doc.Spec.Best()) {
			t.Fatalf("no promotion and no upgrade: %v", doc.Allocated)
		}
		return
	}
	offer := promos[0]
	if offer.SLA != oc.SLA.ID || offer.OfferPrice >= offer.ListPrice {
		t.Fatalf("promotion = %+v", offer)
	}
	if err := b.AcceptPromotion(oc.SLA.ID); err != nil {
		t.Fatalf("AcceptPromotion: %v", err)
	}
	doc, _ = b.Session(oc.SLA.ID)
	if !doc.Allocated.Equal(offer.To) {
		t.Errorf("after promotion: %v, want %v", doc.Allocated, offer.To)
	}
	if doc.Price <= priceBefore {
		t.Errorf("price did not grow: %g", doc.Price)
	}
	if len(b.Promotions()) != 0 {
		t.Error("promotion still open after accept")
	}
	if err := b.AcceptPromotion(oc.SLA.ID); err == nil {
		t.Error("double AcceptPromotion succeeded")
	}
}

func TestScenario3DegradationAlternativeQoSAndRecovery(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	req := guaranteedRequest()
	req.AcceptDegradation = true
	offer, err := b.RequestService(req)
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(id); err != nil {
		t.Fatal(err)
	}

	// Congest the C—A link to 50%: the NRM notices on its next check and
	// notifies the broker (scenario 3 trigger).
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{BandwidthFactor: 0.5}); err != nil {
		t.Fatal(err)
	}
	degraded := h.netMgr.CheckAll(h.clock.Now())
	if len(degraded) == 0 {
		t.Fatal("NRM saw no degradation")
	}
	doc, _ := b.Session(id)
	if doc.State == sla.StateActive {
		t.Errorf("session still fully active after degradation: %v", doc.State)
	}
	if v := b.Violations(id); v == 0 {
		t.Error("no violation recorded for below-floor bandwidth")
	}

	// Verify also reports non-conformance while congested.
	rep, err := b.Verify(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conforms {
		t.Error("Verify conforms during congestion")
	}

	// Recovery: congestion clears; a released session triggers
	// restoration (scenario 2a path reused by 3a).
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{}); err != nil {
		t.Fatal(err)
	}
	b.afterRelease()
	doc, _ = b.Session(id)
	if !doc.Allocated.Equal(offer.SLA.Allocated) {
		t.Errorf("allocation after recovery = %v, want %v", doc.Allocated, offer.SLA.Allocated)
	}
}

func TestScenario3RepeatedViolationsTerminate(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	req := guaranteedRequest()
	offer, err := b.RequestService(req)
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := b.Accept(id); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(id); err != nil {
		t.Fatal(err)
	}
	if err := h.topo.SetCongestion("site-a", "site-c", nrm.Congestion{BandwidthFactor: 0.1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.netMgr.CheckAll(h.clock.Now())
		doc, _ := b.Session(id)
		if doc.State == sla.StateTerminated {
			break
		}
	}
	doc, _ := b.Session(id)
	if doc.State != sla.StateTerminated {
		t.Fatalf("state after repeated violations = %v, want terminated (scenario 3c)", doc.State)
	}
}

func TestExpireDue(t *testing.T) {
	h := newHarness(t)
	b := h.broker
	offer, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	if due := b.ExpireDue(); len(due) != 0 {
		t.Fatalf("ExpireDue before end = %v", due)
	}
	h.clock.Advance(6 * time.Hour)
	due := b.ExpireDue()
	if len(due) != 1 || due[0] != offer.SLA.ID {
		t.Fatalf("ExpireDue = %v", due)
	}
	doc, _ := b.Session(offer.SLA.ID)
	if doc.State != sla.StateExpired {
		t.Errorf("state = %v", doc.State)
	}
}

func TestBestEffortFlow(t *testing.T) {
	h := newHarness(t)
	b := h.broker
	if err := b.BestEffortRequest("student", resource.Nodes(20)); err != nil {
		t.Fatalf("BestEffortRequest: %v", err)
	}
	if err := b.BestEffortRequest("student2", resource.Nodes(10)); !errors.Is(err, ErrBestEffortFull) {
		t.Fatalf("over-request err = %v", err)
	}
	if err := b.BestEffortRelease("student"); err != nil {
		t.Fatal(err)
	}
	if err := b.BestEffortRequest("student2", resource.Nodes(10)); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestNotifyFailurePreemptsBestEffort(t *testing.T) {
	h := newHarness(t)
	b := h.broker
	offer, err := b.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(offer.SLA.ID); err != nil {
		t.Fatal(err)
	}
	if err := b.BestEffortRequest("be", resource.Nodes(16)); err != nil {
		t.Fatal(err)
	}
	// t2: three guaranteed-pool processors fail.
	pre := b.NotifyFailure(resource.Nodes(3))
	if len(pre) != 1 {
		t.Fatalf("preemptions = %+v", pre)
	}
	// The guaranteed session keeps its 10 nodes.
	doc, _ := b.Session(offer.SLA.ID)
	if doc.Allocated.CPU != 10 {
		t.Errorf("guaranteed allocation after failure = %v", doc.Allocated)
	}
	// t3: recovery.
	if got := b.NotifyFailure(resource.Capacity{}); len(got) != 0 {
		t.Errorf("recovery preempted %v", got)
	}
}

func TestRunOptimizerUpgrades(t *testing.T) {
	h := newHarness(t)
	b := h.broker

	// Squeeze a controlled-load session down, then free the squeezer and
	// run the optimizer explicitly.
	big := guaranteedRequest()
	big.Spec = sla.NewSpec(sla.Exact(resource.CPU, 13))
	ob, err := b.RequestService(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(ob.SLA.ID); err != nil {
		t.Fatal(err)
	}
	oc, err := b.RequestService(controlledRequest("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Accept(oc.SLA.ID); err != nil {
		t.Fatal(err)
	}
	before, _ := b.Session(oc.SLA.ID)
	if before.Allocated.Equal(before.Spec.Best()) {
		t.Fatal("setup: session already at best")
	}

	// Free capacity without the automatic scenario-2 hook by releasing
	// the allocator grant directly, then run the optimizer.
	if err := b.Terminate(ob.SLA.ID, "done"); err != nil {
		t.Fatal(err)
	}
	after, _ := b.Session(oc.SLA.ID)
	if !after.Allocated.Equal(after.Spec.Best()) {
		t.Errorf("optimizer did not upgrade: %v, want %v", after.Allocated, after.Spec.Best())
	}
	out, err := b.RunOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	if out.Applied {
		t.Errorf("second optimizer pass applied changes: %+v", out)
	}
}

func TestBrokerClosedRefusesRequests(t *testing.T) {
	h := newHarness(t)
	h.broker.Close()
	if _, err := h.broker.RequestService(guaranteedRequest()); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := h.broker.BestEffortRequest("x", resource.Nodes(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	h.broker.Close() // idempotent
}

func TestNewBrokerValidation(t *testing.T) {
	if _, err := NewBroker(Config{}); err == nil {
		t.Error("NewBroker without GARA accepted")
	}
	if _, err := NewBroker(Config{GARA: gara.NewSystem()}); err == nil {
		t.Error("NewBroker with empty plan accepted")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: t0, Kind: "offer", SLA: "x", Msg: "m"}
	if !strings.Contains(e.String(), "offer") || !strings.Contains(e.String(), "(x)") {
		t.Errorf("Event.String = %q", e.String())
	}
	e2 := Event{At: t0, Kind: "failure", Msg: "m"}
	if strings.Contains(e2.String(), "()") {
		t.Errorf("Event.String = %q", e2.String())
	}
}
