package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// intakeRequest is a small guaranteed ask (1 CPU) so a full batch of
// eight fits the 15-CPU guaranteed plan with room to spare.
func intakeRequest(client string) Request {
	return Request{
		Service: "simulation",
		Client:  client,
		Class:   sla.ClassGuaranteed,
		Spec:    sla.NewSpec(sla.Exact(resource.CPU, 1)),
		Start:   t0,
		End:     t5,
	}
}

func withIntake(cfg IntakeConfig) func(*Config) {
	return func(c *Config) { c.Intake = cfg }
}

// TestIntakeGroupCommitOneFsync is the group-commit contract on disk: a
// batch of eight admissions lands through one wal.AppendBatch — eight
// journal records, ONE fsync — where the direct path would have paid
// eight.
func TestIntakeGroupCommitOneFsync(t *testing.T) {
	h := newDurableHarness(t, 0, withIntake(IntakeConfig{Enabled: true, MaxBatch: 32}))
	b := h.broker

	appends0, syncs0, _ := b.WALStats()
	tickets := make([]*IntakeTicket, 8)
	for i := range tickets {
		tk, err := b.Submit(intakeRequest(fmt.Sprintf("batch-%d", i)))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if tk.Resolved() {
			t.Fatalf("ticket %d resolved before any flush", i)
		}
		tickets[i] = tk
	}
	if got := b.IntakePending(); got != 8 {
		t.Fatalf("IntakePending = %d, want 8", got)
	}
	b.FlushIntake()
	if got := b.IntakePending(); got != 0 {
		t.Fatalf("IntakePending after flush = %d, want 0", got)
	}
	for i, tk := range tickets {
		offer, err := tk.Wait()
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if offer == nil || offer.SLA == nil {
			t.Fatalf("ticket %d: fulfilled without an offer", i)
		}
	}
	appends1, syncs1, _ := b.WALStats()
	if got := appends1 - appends0; got != 8 {
		t.Errorf("journal records for the batch = %d, want 8 (one per session)", got)
	}
	if got := syncs1 - syncs0; got != 1 {
		t.Errorf("fsyncs for the batch = %d, want 1 (the group commit)", got)
	}
}

// TestIntakeBackpressure: a full shard queue refuses with ErrIntakeFull
// instead of blocking or growing without bound, and the queued tickets
// still resolve at the next flush.
func TestIntakeBackpressure(t *testing.T) {
	h := newHarness(t, withIntake(IntakeConfig{Enabled: true, MaxBatch: 64, Depth: 2}))
	b := h.broker

	t1, err := b.Submit(intakeRequest("bp-0"))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := b.Submit(intakeRequest("bp-1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(intakeRequest("bp-2")); !errors.Is(err, ErrIntakeFull) {
		t.Fatalf("third Submit at Depth=2: err = %v, want ErrIntakeFull", err)
	}
	b.FlushIntake()
	for i, tk := range []*IntakeTicket{t1, t2} {
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("queued ticket %d after flush: %v", i, err)
		}
	}
	// The queue drained, so the refused client's retry goes through.
	if _, err := b.Submit(intakeRequest("bp-2")); err != nil {
		t.Fatalf("retry after drain: %v", err)
	}
	b.FlushIntake()
}

// TestIntakeSubmitWaitParity: an admission through the batch path yields
// the same offer — price, allocation, expiry — as the identical request
// through the direct path, and inline failures (validation, unknown
// service, over budget) surface identically.
func TestIntakeSubmitWaitParity(t *testing.T) {
	direct := newHarness(t)
	batched := newHarness(t, withIntake(IntakeConfig{Enabled: true}))

	want, err := direct.broker.RequestService(guaranteedRequest())
	if err != nil {
		t.Fatalf("direct RequestService: %v", err)
	}
	got, err := batched.broker.SubmitWait(guaranteedRequest())
	if err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if got.Price != want.Price {
		t.Errorf("price: batch path %v, direct %v", got.Price, want.Price)
	}
	if !got.Expires.Equal(want.Expires) {
		t.Errorf("expiry: batch path %v, direct %v", got.Expires, want.Expires)
	}
	if got.SLA.Class != want.SLA.Class || got.Compensated != want.Compensated {
		t.Errorf("offer shape differs: batch %+v, direct %+v", got, want)
	}

	// Inline failure parity: a request for a service nobody registered
	// fails at Submit, before any ticket exists.
	bad := guaranteedRequest()
	bad.Service = "no-such-service"
	_, directErr := direct.broker.RequestService(bad)
	_, batchErr := batched.broker.SubmitWait(bad)
	if !errors.Is(batchErr, ErrNoService) || !errors.Is(directErr, ErrNoService) {
		t.Errorf("unknown service: batch %v, direct %v, want ErrNoService from both", batchErr, directErr)
	}
	empty := Request{}
	if _, err := batched.broker.Submit(empty); err == nil {
		t.Error("Submit accepted an invalid request")
	}
}

// TestIntakeRecoveryAfterBatchedPropose: sessions journaled by a group
// commit survive a crash exactly like direct-path sessions — the batch
// amortizes the fsync, not the durability.
func TestIntakeRecoveryAfterBatchedPropose(t *testing.T) {
	h := newDurableHarness(t, 0, withIntake(IntakeConfig{Enabled: true, MaxBatch: 32}))

	tickets := make([]*IntakeTicket, 8)
	for i := range tickets {
		tk, err := h.broker.Submit(intakeRequest(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	h.broker.FlushIntake()
	// Drive half the batch to accepted so recovery covers both the
	// proposed and the accepted lifecycles out of one journal batch.
	for i, tk := range tickets {
		offer, err := tk.Wait()
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if i%2 == 0 {
			if err := h.broker.Accept(offer.SLA.ID); err != nil {
				t.Fatalf("Accept %d: %v", i, err)
			}
		}
	}

	before := mustJSON(t, digest(h.broker))
	h.crashAndRecover(t)
	after := mustJSON(t, digest(h.broker))
	if before != after {
		t.Fatalf("state digest changed across crash/recover:\nbefore: %s\nafter:  %s", before, after)
	}
	// The recovered broker keeps its configured intake.
	if !h.broker.IntakeEnabled() {
		t.Fatal("recovered broker lost its intake")
	}
	if _, err := h.broker.SubmitWait(intakeRequest("rec-after")); err != nil {
		t.Fatalf("SubmitWait on recovered broker: %v", err)
	}
}

// TestIntakeClosedFailsQueued: Close (and Crash) must fail every queued
// ticket with ErrClosed — an unresolved ticket would hang its waiter
// forever.
func TestIntakeClosedFailsQueued(t *testing.T) {
	h := newHarness(t, withIntake(IntakeConfig{Enabled: true, MaxBatch: 64}))
	b := h.broker

	tickets := make([]*IntakeTicket, 3)
	for i := range tickets {
		tk, err := b.Submit(intakeRequest(fmt.Sprintf("closed-%d", i)))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	b.Close()
	for i, tk := range tickets {
		if _, err := tk.Wait(); !errors.Is(err, ErrClosed) {
			t.Errorf("ticket %d after Close: err = %v, want ErrClosed", i, err)
		}
	}
	if _, err := b.Submit(intakeRequest("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: err = %v, want ErrClosed", err)
	}
}

// TestIntakeFlushEveryTimer: with FlushEvery set, a lone queued
// admission (below MaxBatch) is flushed when the idle timer fires on the
// manual clock — the latency bound for quiet periods.
func TestIntakeFlushEveryTimer(t *testing.T) {
	h := newHarness(t, withIntake(IntakeConfig{
		Enabled: true, MaxBatch: 32, FlushEvery: 30 * time.Second,
	}))
	b := h.broker

	tk, err := b.Submit(intakeRequest("timer-0"))
	if err != nil {
		t.Fatal(err)
	}
	if tk.Resolved() {
		t.Fatal("ticket resolved before the idle timer fired")
	}
	h.clock.Advance(30 * time.Second)
	offer, err := tk.Wait()
	if err != nil {
		t.Fatalf("ticket after timer flush: %v", err)
	}
	if offer == nil {
		t.Fatal("timer flush fulfilled the ticket without an offer")
	}
	// The timer re-arms for later submissions, not just the first.
	tk2, err := b.Submit(intakeRequest("timer-1"))
	if err != nil {
		t.Fatal(err)
	}
	h.clock.Advance(30 * time.Second)
	if _, err := tk2.Wait(); err != nil {
		t.Fatalf("second timer flush: %v", err)
	}
}

// TestIntakeMaxBatchInlineFlush: the MaxBatch-th Submit triggers the
// flush inline — no timer, no explicit FlushIntake needed.
func TestIntakeMaxBatchInlineFlush(t *testing.T) {
	h := newHarness(t, withIntake(IntakeConfig{Enabled: true, MaxBatch: 4}))
	b := h.broker

	tickets := make([]*IntakeTicket, 4)
	for i := range tickets {
		tk, err := b.Submit(intakeRequest(fmt.Sprintf("inline-%d", i)))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		if !tk.Resolved() {
			t.Fatalf("ticket %d unresolved after MaxBatch submissions", i)
		}
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
}

// TestIntakeDisabledByDefault: a broker built without IntakeConfig
// refuses Submit and reports no intake — the historical direct-path
// configuration is unchanged.
func TestIntakeDisabledByDefault(t *testing.T) {
	h := newHarness(t)
	if h.broker.IntakeEnabled() {
		t.Fatal("intake enabled without configuration")
	}
	if n := h.broker.IntakePending(); n != 0 {
		t.Fatalf("IntakePending on disabled intake = %d, want 0", n)
	}
	if _, err := h.broker.Submit(intakeRequest("x")); err == nil {
		t.Fatal("Submit succeeded on a broker without an intake")
	}
	h.broker.FlushIntake() // must be a harmless no-op
}

// TestIntakeBudgetRefusalBurnsNoID: a member refused for budget inside a
// batch must not consume an SLA ID, so the surviving members' IDs — and
// therefore every downstream digest — match a run where the refused
// request never arrived.
func TestIntakeBudgetRefusalBurnsNoID(t *testing.T) {
	h := newHarness(t, withIntake(IntakeConfig{Enabled: true, MaxBatch: 32}))
	b := h.broker

	rich := intakeRequest("payer")
	poor := intakeRequest("pauper")
	poor.Budget = 0.000001 // below any quoted price

	tkPoor, err := b.Submit(poor)
	if err != nil {
		t.Fatal(err)
	}
	tkRich, err := b.Submit(rich)
	if err != nil {
		t.Fatal(err)
	}
	b.FlushIntake()
	if _, err := tkPoor.Wait(); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("pauper: err = %v, want ErrOverBudget", err)
	}
	offer, err := tkRich.Wait()
	if err != nil {
		t.Fatalf("payer: %v", err)
	}

	// A clean broker admitting only the payer must mint the same ID.
	ref := newHarness(t, withIntake(IntakeConfig{Enabled: true, MaxBatch: 32}))
	refOffer, err := ref.broker.SubmitWait(rich)
	if err != nil {
		t.Fatal(err)
	}
	if offer.SLA.ID != refOffer.SLA.ID {
		t.Errorf("budget refusal burned an SLA ID: got %s, want %s", offer.SLA.ID, refOffer.SLA.ID)
	}
}

// BenchmarkIntakeAdmission measures amortized admission cost through the
// group-commit path at batch 8 — the acceptance target is sub-10 µs
// amortized. Rejection and pruning are untimed cleanup, mirroring the
// request/reject discipline of BenchmarkSerialAdmission.
func BenchmarkIntakeAdmission(b *testing.B) {
	h := newHarness(b, withIntake(IntakeConfig{Enabled: true, MaxBatch: 64}))
	br := h.broker
	const batch = 8
	reqs := make([]Request, batch)
	for i := range reqs {
		reqs[i] = intakeRequest(fmt.Sprintf("bench-intake-%d", i))
	}
	tickets := make([]*IntakeTicket, batch)
	ids := make([]sla.ID, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		for i, req := range reqs {
			tk, err := br.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			tickets[i] = tk
		}
		br.FlushIntake()
		ids = ids[:0]
		for _, tk := range tickets {
			offer, err := tk.Wait()
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, offer.SLA.ID)
		}
		b.StopTimer()
		for _, id := range ids {
			if err := br.Reject(id); err != nil {
				b.Fatal(err)
			}
		}
		br.PruneTerminal()
		h.g.PruneCanceled()
		b.StartTimer()
	}
}
