package core_test

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/resource"
	"gqosm/internal/sim"
	"gqosm/internal/sla"
)

// This file drives the broker with arbitrary operation streams and checks
// the full invariant suite after every step. The driver decodes a byte
// string into lifecycle operations, so the same code serves both the
// deterministic regression test (a fixed pseudo-random stream) and the
// native fuzz target FuzzBrokerOps (corpus under
// testdata/fuzz/FuzzBrokerOps, grown by `go test -fuzz=FuzzBrokerOps`).

// driveOps decodes data as (op, arg) byte pairs and applies them to a
// fresh single-site cluster, running invariant.CheckAll after each step.
//
// op%11 selects the operation, arg parameterizes it:
//
//	0..2  service request   arg bit0: guaranteed/controlled-load,
//	                        bits1-3: CPU, bits4-6: duration, bit7: degrade-ok
//	3     accept            arg indexes the proposed set
//	4     reject            arg indexes the proposed set
//	5     invoke            arg indexes the active set
//	6     terminate         arg indexes the active set
//	7     advance clock     10 + arg minutes, then ExpireDue
//	8     failure/recovery  arg bit0 chooses; bits1-3: failed nodes
//	9     best-effort churn arg picks client and request/release; optimizer
//	10    renegotiate       arg indexes the active set (low bits) and sets
//	                        the new spec's width (high bits) — the
//	                        reneg-storm squeeze/stretch cycle
func driveOps(t *testing.T, data []byte) {
	t.Helper()
	cluster, err := sim.NewCluster(sim.ClusterConfig{Plan: sim.DefaultParallelPlan()})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	b := cluster.Broker
	clock := cluster.Clock

	var proposed, active []sla.ID
	pop := func(ids *[]sla.ID, arg byte) (sla.ID, bool) {
		if len(*ids) == 0 {
			return "", false
		}
		i := int(arg) % len(*ids)
		id := (*ids)[i]
		*ids = append((*ids)[:i], (*ids)[i+1:]...)
		return id, true
	}

	for step := 0; step+1 < len(data); step += 2 {
		op, arg := data[step]%11, data[step+1]
		switch {
		case op <= 2: // new request
			now := clock.Now()
			cpu := float64(1 + (arg>>1)&7)
			end := now.Add(time.Duration(1+(arg>>4)&7) * time.Hour)
			var req core.Request
			if arg&1 == 0 {
				req = core.Request{
					Service: "simulation",
					Client:  "fuzz-g" + strconv.Itoa(step),
					Class:   sla.ClassGuaranteed,
					Spec:    sla.NewSpec(sla.Exact(resource.CPU, cpu)),
					Start:   now,
					End:     end,
				}
			} else {
				req = core.Request{
					Service:           "simulation",
					Client:            "fuzz-c" + strconv.Itoa(step),
					Class:             sla.ClassControlledLoad,
					Spec:              sla.NewSpec(sla.Range(resource.CPU, cpu, cpu+float64((arg>>4)&7))),
					Start:             now,
					End:               end,
					AcceptDegradation: arg&0x80 != 0,
				}
			}
			if offer, err := b.RequestService(req); err == nil {
				proposed = append(proposed, offer.SLA.ID)
			}
		case op == 3: // accept
			if id, ok := pop(&proposed, arg); ok {
				if err := b.Accept(id); err == nil {
					active = append(active, id)
				}
			}
		case op == 4: // reject
			if id, ok := pop(&proposed, arg); ok {
				_ = b.Reject(id)
			}
		case op == 5: // invoke
			if len(active) > 0 {
				_, _ = b.Invoke(active[int(arg)%len(active)])
			}
		case op == 6: // terminate
			if id, ok := pop(&active, arg); ok {
				_ = b.Terminate(id, "fuzz")
			}
		case op == 7: // time passes; offers expire, sessions lapse
			clock.Advance(time.Duration(10+int(arg)) * time.Minute)
			b.ExpireDue()
		case op == 8: // failure / recovery
			if arg&1 == 0 {
				b.NotifyFailure(resource.Nodes(float64((arg >> 1) & 7)))
			} else {
				b.NotifyFailure(resource.Capacity{})
			}
		case op == 9: // best-effort churn + optimizer
			client := "fuzz-be" + strconv.Itoa(int(arg)%4)
			if arg&4 == 0 {
				_ = b.BestEffortRequest(client, resource.Nodes(float64(1+(arg>>3)&7)))
			} else {
				_ = b.BestEffortRelease(client)
			}
			_, _ = b.RunOptimizer()
		case op == 10: // renegotiate: squeeze or stretch a live session
			if len(active) > 0 {
				id := active[int(arg)%len(active)]
				hi := 1 + float64((arg>>4)&7)
				_, _ = b.Renegotiate(id, sla.NewSpec(sla.Range(resource.CPU, 1, hi)))
			}
		}

		if err := invariant.CheckAll(b, clock.Now(), cluster.Pool); err != nil {
			t.Fatalf("step %d (op %d, arg %#x): %v", step/2, op, arg, err)
		}
	}
}

// driveShardedOps decodes data as (op, arg, hint) byte triples and
// applies them to a sharded cluster, running invariant.CheckAll after
// each step. op and arg mean exactly what they do in driveOps; the extra
// hint byte sets Request.ShardHint for request operations
// (hint % (shards+1): 0 lets the placement layer pick, 1..shards pins),
// so the fuzzer can steer traffic onto one shard until it overflows and
// the cross-shard fallback chain runs.
func driveShardedOps(t *testing.T, shards int, data []byte) {
	t.Helper()
	cluster, err := sim.NewCluster(sim.ClusterConfig{Plan: sim.DefaultParallelPlan(), Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	b := cluster.Broker
	clock := cluster.Clock

	var proposed, active []sla.ID
	pop := func(ids *[]sla.ID, arg byte) (sla.ID, bool) {
		if len(*ids) == 0 {
			return "", false
		}
		i := int(arg) % len(*ids)
		id := (*ids)[i]
		*ids = append((*ids)[:i], (*ids)[i+1:]...)
		return id, true
	}

	for step := 0; step+2 < len(data); step += 3 {
		op, arg, hint := data[step]%11, data[step+1], int(data[step+2])%(shards+1)
		switch {
		case op <= 2: // new request, optionally pinned to a shard
			now := clock.Now()
			cpu := float64(1 + (arg>>1)&7)
			end := now.Add(time.Duration(1+(arg>>4)&7) * time.Hour)
			var req core.Request
			if arg&1 == 0 {
				req = core.Request{
					Service:   "simulation",
					Client:    "fuzz-g" + strconv.Itoa(step),
					Class:     sla.ClassGuaranteed,
					Spec:      sla.NewSpec(sla.Exact(resource.CPU, cpu)),
					Start:     now,
					End:       end,
					ShardHint: hint,
				}
			} else {
				req = core.Request{
					Service:           "simulation",
					Client:            "fuzz-c" + strconv.Itoa(step),
					Class:             sla.ClassControlledLoad,
					Spec:              sla.NewSpec(sla.Range(resource.CPU, cpu, cpu+float64((arg>>4)&7))),
					Start:             now,
					End:               end,
					AcceptDegradation: arg&0x80 != 0,
					ShardHint:         hint,
				}
			}
			if offer, err := b.RequestService(req); err == nil {
				proposed = append(proposed, offer.SLA.ID)
			}
		case op == 3:
			if id, ok := pop(&proposed, arg); ok {
				if err := b.Accept(id); err == nil {
					active = append(active, id)
				}
			}
		case op == 4:
			if id, ok := pop(&proposed, arg); ok {
				_ = b.Reject(id)
			}
		case op == 5:
			if len(active) > 0 {
				_, _ = b.Invoke(active[int(arg)%len(active)])
			}
		case op == 6:
			if id, ok := pop(&active, arg); ok {
				_ = b.Terminate(id, "fuzz")
			}
		case op == 7:
			clock.Advance(time.Duration(10+int(arg)) * time.Minute)
			b.ExpireDue()
		case op == 8:
			if arg&1 == 0 {
				b.NotifyFailure(resource.Nodes(float64((arg >> 1) & 7)))
			} else {
				b.NotifyFailure(resource.Capacity{})
			}
		case op == 9:
			client := "fuzz-be" + strconv.Itoa(int(arg)%4)
			if arg&4 == 0 {
				_ = b.BestEffortRequest(client, resource.Nodes(float64(1+(arg>>3)&7)))
			} else {
				_ = b.BestEffortRelease(client)
			}
			_, _ = b.RunOptimizer()
		case op == 10: // renegotiate
			if len(active) > 0 {
				id := active[int(arg)%len(active)]
				hi := 1 + float64((arg>>4)&7)
				_, _ = b.Renegotiate(id, sla.NewSpec(sla.Range(resource.CPU, 1, hi)))
			}
		}

		if err := invariant.CheckAll(b, clock.Now(), cluster.Pool); err != nil {
			t.Fatalf("shards %d step %d (op %d, arg %#x, hint %d): %v",
				shards, step/3, op, arg, hint, err)
		}
	}
}

// seedStream reproduces the historical deterministic workload: 600
// operations drawn from rand.NewSource(seed).
func seedStream(seed int64, steps int) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 2*steps)
	rng.Read(data)
	return data
}

// TestBrokerRandomOperationsInvariants is the deterministic regression:
// the seed-1955 stream (Middleware's CACM year) must hold every invariant
// at every step.
func TestBrokerRandomOperationsInvariants(t *testing.T) {
	driveOps(t, seedStream(1955, 600))
}

// TestBrokerShardedRandomOperationsInvariants is the sharded counterpart:
// the same class of pseudo-random stream, decoded as (op, arg, hint)
// triples, must hold every invariant on 2- and 4-shard brokers too.
func TestBrokerShardedRandomOperationsInvariants(t *testing.T) {
	for _, shards := range []int{2, 4} {
		shards := shards
		t.Run(strconv.Itoa(shards), func(t *testing.T) {
			driveShardedOps(t, shards, seedStream(1955, 400))
		})
	}
}

// FuzzBrokerOps lets the fuzzer search for operation interleavings that
// break the invariants: go test -fuzz=FuzzBrokerOps ./internal/core
//
// The first byte selects the shard count (data[0]%4: 0 keeps the classic
// single-shard broker and the legacy 2-byte op stream; 1–3 run a 2/3/4
// shard broker over 3-byte ops whose third byte is the placement hint).
func FuzzBrokerOps(f *testing.F) {
	// Legacy single-shard seeds, shifted behind a zero shard byte.
	f.Add(append([]byte{0}, seedStream(1955, 40)...))
	f.Add(append([]byte{0}, seedStream(2003, 40)...))
	// A clean lifecycle: request, accept, invoke, wait, terminate.
	f.Add(append([]byte{0}, 0, 0x22, 3, 0, 5, 0, 7, 50, 6, 0))
	// Failure pressure on a controlled-load session that may degrade.
	f.Add(append([]byte{0}, 1, 0xa3, 3, 0, 5, 0, 8, 4, 8, 1, 6, 0))
	// Offer-expiry vs accept races and best-effort churn.
	f.Add(append([]byte{0}, 2, 0x12, 7, 120, 3, 0, 9, 2, 9, 6, 7, 200))
	// Cross-shard fallback on 2 shards: two fat requests pinned to shard
	// 1 — the second overflows it and must fall back — then both accepted
	// and one terminated under failure pressure.
	f.Add([]byte{1, 0, 0x08, 1, 0, 0x08, 1, 3, 0, 0, 3, 0, 0, 8, 2, 0, 6, 0, 0})
	// 4 shards, auto-placement vs pinned churn with the optimizer running.
	f.Add([]byte{3, 0, 0x06, 0, 1, 0x85, 2, 0, 0x06, 3, 3, 0, 0, 9, 2, 0, 3, 0, 0, 7, 60, 0, 6, 0, 0})
	f.Add(append([]byte{2}, seedStream(1789, 40)...))
	// Reneg-storm shape: admit a pack of degrade-willing controlled-load
	// sessions, then hammer them with alternating squeeze (narrow spec)
	// and stretch (wide spec) renegotiations before tearing one down.
	f.Add(append([]byte{0},
		1, 0xa7, 1, 0xa5, 1, 0xa3, 3, 0, 3, 0, 3, 0,
		10, 0x00, 10, 0x71, 10, 0x12, 10, 0x60, 10, 0x01,
		6, 0, 10, 0x70, 10, 0x02))
	// Lease-churn shape: short offers abandoned into expiry (op 7 sweeps
	// the confirm window), immediately re-requested, accepted at the
	// last index, and renegotiated right before time runs the lease out.
	f.Add(append([]byte{0},
		0, 0x12, 2, 0x14, 7, 0, 0, 0x12, 3, 1, 4, 0,
		10, 0x30, 7, 120, 0, 0x16, 3, 0, 10, 0x20, 7, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096] // bound runtime per input
		}
		if len(data) == 0 {
			return
		}
		shards := 1 + int(data[0]%4)
		if shards == 1 {
			driveOps(t, data[1:])
			return
		}
		driveShardedOps(t, shards, data[1:])
	})
}

// FuzzPolicyDecisions lets the fuzzer search for an operation stream on
// which consulting a shadow policy changes live behavior — the property
// the shadow-inertness invariant forbids. Each input is run twice, with
// shadowing off and on, and every externally visible outcome (plus the
// final capacity accounting) must match; the invariant oracle runs after
// each step of both runs. The candidate pool includes test-mutator, a
// policy that scribbles on every view it is handed, so a state leak in
// the cloning layer is caught even if the honest candidates never
// trigger it. go test -fuzz=FuzzPolicyDecisions ./internal/core
//
// data[0] selects the candidate, data[1] the shard count (1–3), and the
// rest is the driveOps/driveShardedOps op stream.
func FuzzPolicyDecisions(f *testing.F) {
	f.Add(append([]byte{0, 0}, seedStream(1955, 40)...))
	f.Add(append([]byte{1, 0}, seedStream(2003, 40)...))
	f.Add(append([]byte{2, 0}, seedStream(1789, 40)...))
	// Saturate the guaranteed partition so revenue-greedy diverges on the
	// partition family while the paper policy keeps refusing.
	f.Add(append([]byte{0, 0}, 0, 0x0e, 3, 0, 0, 0x0e, 3, 0, 0, 0x0e, 3, 0, 0, 0x0e))
	// Degrade-willing sessions under failure pressure: a compensation
	// ladder with several rungs, where upgrade-last reorders.
	f.Add(append([]byte{1, 0}, 1, 0xa7, 1, 0xa5, 1, 0xa3, 3, 0, 3, 0, 3, 0, 8, 8, 8, 12))
	// The mutator on a sharded broker: placement views are copied too.
	f.Add(append([]byte{2, 2}, seedStream(1955, 40)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			data = data[:2048]
		}
		if len(data) < 2 {
			return
		}
		candidates := []string{"revenue-greedy", "upgrade-last", "test-mutator"}
		candidate := candidates[int(data[0])%len(candidates)]
		shards := 1 + int(data[1])%3
		driveTwin(t, candidate, shards, data[2:])
	})
}
