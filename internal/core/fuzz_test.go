package core_test

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/resource"
	"gqosm/internal/sim"
	"gqosm/internal/sla"
)

// This file drives the broker with arbitrary operation streams and checks
// the full invariant suite after every step. The driver decodes a byte
// string into lifecycle operations, so the same code serves both the
// deterministic regression test (a fixed pseudo-random stream) and the
// native fuzz target FuzzBrokerOps (corpus under
// testdata/fuzz/FuzzBrokerOps, grown by `go test -fuzz=FuzzBrokerOps`).

// driveOps decodes data as (op, arg) byte pairs and applies them to a
// fresh single-site cluster, running invariant.CheckAll after each step.
//
// op%10 selects the operation, arg parameterizes it:
//
//	0..2  service request   arg bit0: guaranteed/controlled-load,
//	                        bits1-3: CPU, bits4-6: duration, bit7: degrade-ok
//	3     accept            arg indexes the proposed set
//	4     reject            arg indexes the proposed set
//	5     invoke            arg indexes the active set
//	6     terminate         arg indexes the active set
//	7     advance clock     10 + arg minutes, then ExpireDue
//	8     failure/recovery  arg bit0 chooses; bits1-3: failed nodes
//	9     best-effort churn arg picks client and request/release; optimizer
func driveOps(t *testing.T, data []byte) {
	t.Helper()
	cluster, err := sim.NewCluster(sim.ClusterConfig{Plan: sim.DefaultParallelPlan()})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	b := cluster.Broker
	clock := cluster.Clock

	var proposed, active []sla.ID
	pop := func(ids *[]sla.ID, arg byte) (sla.ID, bool) {
		if len(*ids) == 0 {
			return "", false
		}
		i := int(arg) % len(*ids)
		id := (*ids)[i]
		*ids = append((*ids)[:i], (*ids)[i+1:]...)
		return id, true
	}

	for step := 0; step+1 < len(data); step += 2 {
		op, arg := data[step]%10, data[step+1]
		switch {
		case op <= 2: // new request
			now := clock.Now()
			cpu := float64(1 + (arg>>1)&7)
			end := now.Add(time.Duration(1+(arg>>4)&7) * time.Hour)
			var req core.Request
			if arg&1 == 0 {
				req = core.Request{
					Service: "simulation",
					Client:  "fuzz-g" + strconv.Itoa(step),
					Class:   sla.ClassGuaranteed,
					Spec:    sla.NewSpec(sla.Exact(resource.CPU, cpu)),
					Start:   now,
					End:     end,
				}
			} else {
				req = core.Request{
					Service:           "simulation",
					Client:            "fuzz-c" + strconv.Itoa(step),
					Class:             sla.ClassControlledLoad,
					Spec:              sla.NewSpec(sla.Range(resource.CPU, cpu, cpu+float64((arg>>4)&7))),
					Start:             now,
					End:               end,
					AcceptDegradation: arg&0x80 != 0,
				}
			}
			if offer, err := b.RequestService(req); err == nil {
				proposed = append(proposed, offer.SLA.ID)
			}
		case op == 3: // accept
			if id, ok := pop(&proposed, arg); ok {
				if err := b.Accept(id); err == nil {
					active = append(active, id)
				}
			}
		case op == 4: // reject
			if id, ok := pop(&proposed, arg); ok {
				_ = b.Reject(id)
			}
		case op == 5: // invoke
			if len(active) > 0 {
				_, _ = b.Invoke(active[int(arg)%len(active)])
			}
		case op == 6: // terminate
			if id, ok := pop(&active, arg); ok {
				_ = b.Terminate(id, "fuzz")
			}
		case op == 7: // time passes; offers expire, sessions lapse
			clock.Advance(time.Duration(10+int(arg)) * time.Minute)
			b.ExpireDue()
		case op == 8: // failure / recovery
			if arg&1 == 0 {
				b.NotifyFailure(resource.Nodes(float64((arg >> 1) & 7)))
			} else {
				b.NotifyFailure(resource.Capacity{})
			}
		case op == 9: // best-effort churn + optimizer
			client := "fuzz-be" + strconv.Itoa(int(arg)%4)
			if arg&4 == 0 {
				_ = b.BestEffortRequest(client, resource.Nodes(float64(1+(arg>>3)&7)))
			} else {
				_ = b.BestEffortRelease(client)
			}
			_, _ = b.RunOptimizer()
		}

		if err := invariant.CheckAll(b, clock.Now(), cluster.Pool); err != nil {
			t.Fatalf("step %d (op %d, arg %#x): %v", step/2, op, arg, err)
		}
	}
}

// seedStream reproduces the historical deterministic workload: 600
// operations drawn from rand.NewSource(seed).
func seedStream(seed int64, steps int) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, 2*steps)
	rng.Read(data)
	return data
}

// TestBrokerRandomOperationsInvariants is the deterministic regression:
// the seed-1955 stream (Middleware's CACM year) must hold every invariant
// at every step.
func TestBrokerRandomOperationsInvariants(t *testing.T) {
	driveOps(t, seedStream(1955, 600))
}

// FuzzBrokerOps lets the fuzzer search for operation interleavings that
// break the invariants: go test -fuzz=FuzzBrokerOps ./internal/core
func FuzzBrokerOps(f *testing.F) {
	f.Add(seedStream(1955, 40))
	f.Add(seedStream(2003, 40))
	// A clean lifecycle: request, accept, invoke, wait, terminate.
	f.Add([]byte{0, 0x22, 3, 0, 5, 0, 7, 50, 6, 0})
	// Failure pressure on a controlled-load session that may degrade.
	f.Add([]byte{1, 0xa3, 3, 0, 5, 0, 8, 4, 8, 1, 6, 0})
	// Offer-expiry vs accept races and best-effort churn.
	f.Add([]byte{2, 0x12, 7, 120, 3, 0, 9, 2, 9, 6, 7, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096] // bound runtime per input
		}
		driveOps(t, data)
	})
}
