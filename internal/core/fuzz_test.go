package core

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// TestBrokerRandomOperationsInvariants drives the broker with a random but
// deterministic operation mix — requests of every class, accepts, rejects,
// terminations, expiry sweeps, failures and recoveries, optimizer passes —
// and checks global invariants after every step:
//
//  1. the compute pool never holds more than its capacity (mechanism);
//  2. the allocator never over-commits any partition (policy);
//  3. every non-terminal session's allocation satisfies its SLA;
//  4. terminal sessions hold no allocator grant;
//  5. the ledger's net revenue is finite and consistent in sign.
func TestBrokerRandomOperationsInvariants(t *testing.T) {
	h := newHarness(t)
	b := h.broker
	rng := rand.New(rand.NewSource(1955)) // Middleware's CACM year

	var (
		proposed []sla.ID
		active   []sla.ID
	)
	pick := func(ids []sla.ID) (sla.ID, int) {
		i := rng.Intn(len(ids))
		return ids[i], i
	}
	remove := func(ids []sla.ID, i int) []sla.ID {
		return append(ids[:i], ids[i+1:]...)
	}

	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op <= 2: // new request
			var req Request
			if rng.Intn(2) == 0 {
				req = Request{
					Service: "simulation",
					Client:  "fuzz-g" + strconv.Itoa(step),
					Class:   sla.ClassGuaranteed,
					Spec:    sla.NewSpec(sla.Exact(resource.CPU, float64(1+rng.Intn(8)))),
					Start:   h.clock.Now(),
					End:     h.clock.Now().Add(time.Duration(1+rng.Intn(6)) * time.Hour),
				}
			} else {
				min := float64(1 + rng.Intn(3))
				req = Request{
					Service:           "simulation",
					Client:            "fuzz-c" + strconv.Itoa(step),
					Class:             sla.ClassControlledLoad,
					Spec:              sla.NewSpec(sla.Range(resource.CPU, min, min+float64(rng.Intn(6)))),
					Start:             h.clock.Now(),
					End:               h.clock.Now().Add(time.Duration(1+rng.Intn(6)) * time.Hour),
					AcceptDegradation: rng.Intn(2) == 0,
				}
			}
			if offer, err := b.RequestService(req); err == nil {
				proposed = append(proposed, offer.SLA.ID)
			}
		case op == 3: // accept
			if len(proposed) > 0 {
				id, i := pick(proposed)
				proposed = remove(proposed, i)
				if err := b.Accept(id); err == nil {
					active = append(active, id)
				}
			}
		case op == 4: // reject
			if len(proposed) > 0 {
				id, i := pick(proposed)
				proposed = remove(proposed, i)
				_ = b.Reject(id)
			}
		case op == 5: // invoke
			if len(active) > 0 {
				id, _ := pick(active)
				_, _ = b.Invoke(id)
			}
		case op == 6: // terminate
			if len(active) > 0 {
				id, i := pick(active)
				active = remove(active, i)
				_ = b.Terminate(id, "fuzz")
			}
		case op == 7: // time passes; offers expire, sessions lapse
			h.clock.Advance(time.Duration(10+rng.Intn(120)) * time.Minute)
			b.ExpireDue()
		case op == 8: // failure / recovery
			if rng.Intn(2) == 0 {
				b.NotifyFailure(resource.Nodes(float64(rng.Intn(6))))
			} else {
				b.NotifyFailure(resource.Capacity{})
			}
		case op == 9: // best effort churn + optimizer
			client := "fuzz-be" + strconv.Itoa(rng.Intn(4))
			if rng.Intn(2) == 0 {
				_ = b.BestEffortRequest(client, resource.Nodes(float64(1+rng.Intn(6))))
			} else {
				_ = b.BestEffortRelease(client)
			}
			_, _ = b.RunOptimizer()
		}

		// Invariant 1: the pool is the mechanism of record.
		now := h.clock.Now()
		if use := h.pool.InUse(now); !use.FitsIn(h.pool.Total()) {
			t.Fatalf("step %d: pool oversubscribed: %v > %v", step, use, h.pool.Total())
		}
		// Invariant 2: allocator partitions.
		plan := b.Allocator().Plan()
		var gTotal, beTotal resource.Capacity
		for _, u := range b.Allocator().Snapshot() {
			gTotal = gTotal.Add(u.Guaranteed)
			beTotal = beTotal.Add(u.BestEffort)
			if !u.Guaranteed.Add(u.BestEffort).FitsIn(u.Capacity.Sub(u.Offline)) {
				t.Fatalf("step %d: pool %s overfull: %+v", step, u.Pool, u)
			}
		}
		gMax := plan.Guaranteed.Sub(b.Allocator().Offline()).ClampMin(resource.Capacity{}).Add(plan.Adaptive)
		if !gTotal.FitsIn(gMax) {
			t.Fatalf("step %d: guaranteed %v exceeds deliverable %v", step, gTotal, gMax)
		}
		// Invariants 3 and 4: session-level consistency.
		for _, doc := range b.Sessions(nil) {
			alloc, held := b.Allocator().GuaranteedAllocation(string(doc.ID))
			if doc.State.Terminal() {
				if held {
					t.Fatalf("step %d: terminal session %s still holds %v", step, doc.ID, alloc)
				}
				continue
			}
			if !held {
				t.Fatalf("step %d: live session %s has no allocator grant", step, doc.ID)
			}
			if !doc.Spec.Accepts(doc.Allocated) {
				t.Fatalf("step %d: session %s allocation %v violates its SLA", step, doc.ID, doc.Allocated)
			}
			if !alloc.Equal(doc.Allocated) {
				t.Fatalf("step %d: session %s doc %v != allocator %v", step, doc.ID, doc.Allocated, alloc)
			}
		}
		// Invariant 5: accounting sanity.
		if rev := b.Ledger().NetRevenue(); rev != rev /* NaN check */ {
			t.Fatalf("step %d: NaN revenue", step)
		}
	}
}
