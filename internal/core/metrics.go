package core

import (
	"strconv"

	"gqosm/internal/obs"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// brokerMetrics holds the broker's obs handles. Handles are nil-safe,
// so a zero brokerMetrics (broker built without a registry) costs one
// nil check per event and nothing else.
type brokerMetrics struct {
	// Latency histograms for the three operations with multi-component
	// critical paths (discovery → allocator → GARA → timers).
	admitSeconds    *obs.Histogram
	renegSeconds    *obs.Histogram
	teardownSeconds *obs.Histogram

	// lifecycle counts every SLA state event by kind.
	requests      *obs.Counter
	requestErrors *obs.Counter
	accepted      *obs.Counter
	rejected      *obs.Counter
	degraded      *obs.Counter
	promoted      *obs.Counter
	expired       *obs.Counter
	terminated    *obs.Counter
	restored      *obs.Counter
	violations    *obs.Counter
	failures      *obs.Counter
	compensations *obs.Counter

	optimizerRuns    *obs.Counter
	optimizerApplied *obs.Counter

	// Cluster hand-off traffic (see handoff.go): sessions drained out,
	// imported in, and migrations completed on the source side.
	handoffsOut  *obs.Counter
	handoffsIn   *obs.Counter
	handoffsDone *obs.Counter

	monitorTicks  *obs.Counter
	monitorPanics *obs.Counter

	// Durability layer (see durable.go): journaled records, snapshots
	// landed, appends that failed and sealed the durable history.
	walRecords   *obs.Counter
	walSnapshots *obs.Counter
	walFailures  *obs.Counter
}

func newBrokerMetrics(reg *obs.Registry) brokerMetrics {
	lifecycle := func(event string) *obs.Counter {
		return reg.Counter("gqosm_broker_lifecycle_total",
			"SLA lifecycle events by kind", "event", event)
	}
	return brokerMetrics{
		admitSeconds: reg.Histogram("gqosm_broker_admission_seconds",
			"RequestService latency (discovery, admission, reservation)", nil),
		renegSeconds: reg.Histogram("gqosm_broker_renegotiation_seconds",
			"Renegotiate latency", nil),
		teardownSeconds: reg.Histogram("gqosm_broker_teardown_seconds",
			"Session teardown latency (release, unbind, cancel)", nil),

		requests:      lifecycle("request"),
		requestErrors: lifecycle("request_error"),
		accepted:      lifecycle("accept"),
		rejected:      lifecycle("reject"),
		degraded:      lifecycle("degrade"),
		promoted:      lifecycle("promote"),
		expired:       lifecycle("expire"),
		terminated:    lifecycle("terminate"),
		restored:      lifecycle("restore"),
		violations:    lifecycle("violation"),
		failures:      lifecycle("failure"),
		compensations: lifecycle("compensate"),

		handoffsOut:  lifecycle("handoff_out"),
		handoffsIn:   lifecycle("handoff_in"),
		handoffsDone: lifecycle("handoff_done"),

		optimizerRuns: reg.Counter("gqosm_broker_optimizer_runs_total",
			"Section 5.3 optimizer executions"),
		optimizerApplied: reg.Counter("gqosm_broker_optimizer_applied_total",
			"Optimizer runs whose reallocation cleared the gain threshold"),

		monitorTicks: reg.Counter("gqosm_monitor_ticks_total",
			"Periodic management loop ticks"),
		monitorPanics: reg.Counter("gqosm_monitor_panics_total",
			"Panics recovered inside the monitor tick"),

		walRecords: reg.Counter("gqosm_wal_records_total",
			"Lifecycle records journaled to the write-ahead log"),
		walSnapshots: reg.Counter("gqosm_wal_snapshots_total",
			"Snapshots landed in the write-ahead log"),
		walFailures: reg.Counter("gqosm_wal_append_failures_total",
			"WAL appends that failed and sealed the durable history"),
	}
}

// registerGauges mounts the scrape-time callback gauges: per-partition
// utilization straight off the Algorithm-1 allocators (summed across
// shards, so the domain-level series is shard-count independent),
// per-shard load for placement visibility, and session counts by SLA
// state. Callbacks take alloc.mu / sh.mu only at scrape time, so the
// hot path pays nothing.
func (b *Broker) registerGauges(reg *obs.Registry) {
	for poolIdx, pool := range []string{"guaranteed", "adaptive", "besteffort"} {
		for _, kind := range resource.Kinds {
			poolIdx, kind := poolIdx, kind
			reg.GaugeFunc("gqosm_partition_utilization",
				"Used fraction of each partition pool per resource dimension",
				func() float64 {
					var used, total float64
					for _, sh := range b.shards {
						u := sh.alloc.Snapshot()[poolIdx]
						total += u.Capacity.Get(kind) - u.Offline.Get(kind)
						used += u.Guaranteed.Get(kind) + u.BestEffort.Get(kind)
					}
					if total <= resource.Epsilon {
						return 0
					}
					return used / total
				},
				"pool", pool, "dim", kind.String())
		}
	}
	for _, sh := range b.shards {
		for _, kind := range resource.Kinds {
			sh, kind := sh, kind
			reg.GaugeFunc("gqosm_shard_utilization",
				"Guaranteed-pool demand fraction per shard and resource dimension",
				func() float64 {
					u := sh.alloc.Utilization()
					return u.Get(kind)
				},
				"shard", shardLabel(sh.index), "dim", kind.String())
		}
	}
	for _, state := range []sla.State{
		sla.StateProposed, sla.StateEstablished, sla.StateActive,
		sla.StateDegraded, sla.StateViolated, sla.StateTerminated,
		sla.StateExpired,
	} {
		state := state
		reg.GaugeFunc("gqosm_broker_sessions",
			"Broker sessions by SLA state",
			func() float64 {
				n := 0
				for _, sh := range b.shards {
					sh.mu.Lock()
					for _, s := range sh.sessions {
						if s.doc.State == state {
							n++
						}
					}
					sh.mu.Unlock()
				}
				return float64(n)
			},
			"state", state.String())
	}
}

// shardLabel renders a shard index as a metric label value.
func shardLabel(i int) string {
	return strconv.Itoa(i)
}

// trace records one structured lifecycle event in the obs ring. delta
// is the capacity change the transition applied to the partition pools
// (zero Capacity renders as an empty delta). from/to of noState render
// as "" (session creation has no prior state).
func (b *Broker) trace(id sla.ID, from, to sla.State, delta resource.Capacity, reason string) {
	var d string
	if !delta.IsZero() {
		d = delta.String()
	}
	render := func(s sla.State) string {
		if s == noState {
			return ""
		}
		return s.String()
	}
	b.obs.Trace().Add(obs.TraceEvent{
		At:      b.clock.Now(),
		Session: string(id),
		From:    render(from),
		To:      render(to),
		Delta:   d,
		Reason:  reason,
	})
}

// noState marks "no prior state" in trace events (session creation).
const noState = sla.State(-1)

// Obs returns the broker's metrics registry (never nil; a private
// registry is created when Config.Obs is unset).
func (b *Broker) Obs() *obs.Registry { return b.obs }

// MonitorPanics reports how many monitor ticks panicked and were
// recovered.
func (b *Broker) MonitorPanics() int64 { return b.met.monitorPanics.Value() }
