package core

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"gqosm/internal/sla"
	"gqosm/internal/soapx"
	"gqosm/internal/xmlmsg"
)

// This file implements the inter-domain half of Fig. 1: the AQoS "is
// required to interact with clients, RMs, NRMs and *neighboring AQoSs*".
// A Federation links the brokers of several administrative domains; a
// request the local broker cannot serve (no matching service, or
// insufficient capacity even after scenario-1 compensation) is forwarded
// to neighbor brokers in preference order, and the winning domain's offer
// is returned to the client unchanged.

// Peer is a neighboring AQoS broker. It is satisfied by *Broker (local
// wiring) and by *Client via PeerClient (SOAP wiring).
type Peer interface {
	// PeerDomain names the peer's administrative domain.
	PeerDomain() string
	// PeerRequest forwards a service request.
	PeerRequest(req Request) (*Offer, error)
}

// PeerDomain implements Peer for the local broker.
func (b *Broker) PeerDomain() string { return b.cfg.Domain }

// PeerRequest implements Peer for the local broker.
func (b *Broker) PeerRequest(req Request) (*Offer, error) { return b.RequestService(req) }

// PeerLoad implements the optional load-reporting half of Peer for the
// local broker.
func (b *Broker) PeerLoad() (LoadReport, error) { return b.LoadReport(), nil }

// PeerReject implements peerRejecter for the local broker.
func (b *Broker) PeerReject(id sla.ID) error { return b.Reject(id) }

var _ Peer = (*Broker)(nil)

// ErrNoDomainCanServe is returned when the local broker and every
// reachable neighbor decline a request.
var ErrNoDomainCanServe = errors.New("core: no domain can serve the request")

// ErrDuplicatePeer is returned by AddPeer for a peer whose domain is
// already registered (or is the home domain itself): the fan-out would
// otherwise try the same broker twice and could retract the same offer
// twice.
var ErrDuplicatePeer = errors.New("core: peer domain already registered")

// peerUnavailableMsg is the wire-visible marker of ErrPeerUnavailable; a
// PeerClient maps SOAP faults carrying it back to the typed error so the
// retry policy on the calling side still recognizes it as transient.
const peerUnavailableMsg = "peer broker temporarily unavailable (recovering)"

// ErrPeerUnavailable is the recovery-gated refusal: a broker that is
// mid-Recover (WAL replay and RM reconciliation still in flight) refuses
// admissions with it instead of answering from half-installed state.
// Unlike a dead peer's ErrClosed it is transient — retryable() treats it
// like a flaky wire, so the fan-out retries within its budget and the
// front tier re-routes the admission instead of failing it.
var ErrPeerUnavailable = errors.New("core: " + peerUnavailableMsg)

// Federation fronts a home broker with a set of neighbors. It is safe for
// concurrent use.
type Federation struct {
	home *Broker

	mu    sync.Mutex
	peers []Peer

	// wg tracks the fan-out's background goroutines (slow peers still
	// answering after an early winner, and loser retraction); Quiesce
	// waits for them so a harness can checkpoint without racing a
	// retraction.
	wg sync.WaitGroup
}

// NewFederation returns a federation around the home broker.
func NewFederation(home *Broker) *Federation {
	return &Federation{home: home}
}

// Home returns the local broker.
func (f *Federation) Home() *Broker { return f.home }

// AddPeer registers a neighboring AQoS. Peers are tried in registration
// order. A peer whose domain is already registered — or that names the
// home domain — is rejected with ErrDuplicatePeer: forwarding to the
// same broker twice wastes a fan-out slot and can double-retract the
// same losing offer.
func (f *Federation) AddPeer(p Peer) error {
	domain := p.PeerDomain()
	if domain == f.home.cfg.Domain {
		return fmt.Errorf("%w: %q is the home domain", ErrDuplicatePeer, domain)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, q := range f.peers {
		if q.PeerDomain() == domain {
			return fmt.Errorf("%w: %q", ErrDuplicatePeer, domain)
		}
	}
	f.peers = append(f.peers, p)
	return nil
}

// Peers returns the neighbor domain names in trial order.
func (f *Federation) Peers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.peers))
	for i, p := range f.peers {
		out[i] = p.PeerDomain()
	}
	return out
}

// FederatedOffer is an Offer annotated with the domain that produced it.
type FederatedOffer struct {
	Offer
	// Domain is the administrative domain whose broker made the offer;
	// Accept/Reject/Invoke must be addressed there.
	Domain string
	// Forwarded reports that the home domain declined and a neighbor
	// served the request.
	Forwarded bool
}

// RequestService tries the home broker first, then each neighbor. It
// returns the first successful offer; when everyone declines it returns
// ErrNoDomainCanServe wrapping the home broker's error.
func (f *Federation) RequestService(req Request) (*FederatedOffer, error) {
	homeOffer, homeErr := f.home.RequestService(req)
	if homeErr == nil {
		return &FederatedOffer{Offer: *homeOffer, Domain: f.home.cfg.Domain}, nil
	}
	// Validation failures are the client's problem, not a capacity
	// issue: do not forward them. A recovery-gated home refusal IS
	// forwarded — a neighbor can serve while the home broker replays its
	// WAL.
	if !errors.Is(homeErr, ErrNoService) && !errors.Is(homeErr, ErrCannotHonor) &&
		!errors.Is(homeErr, ErrOverBudget) && !errors.Is(homeErr, ErrPeerUnavailable) &&
		!isCapacityError(homeErr) {
		return nil, homeErr
	}

	f.mu.Lock()
	peers := append([]Peer(nil), f.peers...)
	f.mu.Unlock()

	// Fan the request out to every neighbor at once; one slow or
	// unreachable peer no longer serializes the rest. The scan below walks
	// results in registration order, so the winning domain is the same one
	// the old sequential loop would have picked.
	results := make([]chan peerResult, len(peers))
	for i, p := range peers {
		ch := make(chan peerResult, 1)
		results[i] = ch
		f.wg.Add(1)
		go func(p Peer, ch chan<- peerResult) {
			defer f.wg.Done()
			// Each peer call runs under the home broker's retry policy:
			// a flaky wire is retried, a dead neighbor is given up on
			// after the budget instead of hanging the fan-out. A retry
			// after a lost reply may leave an extra temporary reservation
			// on the peer — its confirm window reclaims it, exactly like
			// any other unaccepted offer.
			var offer *Offer
			err := f.home.pol.call("peer.request", func() error {
				o, perr := p.PeerRequest(req)
				if perr == nil {
					offer = o
				}
				return perr
			})
			ch <- peerResult{offer: offer, err: err}
		}(p, ch)
	}
	var attempts []string
	for i, p := range peers {
		r := <-results[i]
		if r.err != nil {
			attempts = append(attempts, fmt.Sprintf("%s: %v", p.PeerDomain(), r.err))
			continue
		}
		// Peers past the winner are still in flight; retract whatever they
		// offer so losing domains do not sit on temporary reservations
		// until their confirm windows lapse.
		f.wg.Add(1)
		go func(losers []Peer, pending []chan peerResult) {
			defer f.wg.Done()
			retractLosers(losers, pending)
		}(peers[i+1:], results[i+1:])
		f.home.logf("federation", "", "request for %q forwarded to neighbor %q", req.Service, p.PeerDomain())
		return &FederatedOffer{Offer: *r.offer, Domain: p.PeerDomain(), Forwarded: true}, nil
	}
	sort.Strings(attempts)
	return nil, fmt.Errorf("%w: home %q: %v; neighbors: %v",
		ErrNoDomainCanServe, f.home.cfg.Domain, homeErr, attempts)
}

// Quiesce blocks until every background fan-out goroutine — slow peers
// still answering after an early winner, and the retraction of their
// losing offers — has finished. Checkpointing harnesses call it before
// asserting reservation hygiene; an in-flight retraction is not a leak.
func (f *Federation) Quiesce() { f.wg.Wait() }

// peerResult is one neighbor's answer to a fanned-out request.
type peerResult struct {
	offer *Offer
	err   error
}

// peerRejecter is the optional retraction half of Peer: a peer that can
// reject a proposed SLA lets the federation clean up offers that lost the
// registration-order race. Both *Broker and *PeerClient implement it.
type peerRejecter interface {
	PeerReject(id sla.ID) error
}

// retractLosers drains the still-pending results of peers that lost to an
// earlier-registered winner and rejects any offer they produced.
func retractLosers(peers []Peer, results []chan peerResult) {
	for i, p := range peers {
		r := <-results[i]
		if r.err != nil || r.offer == nil {
			continue
		}
		if rej, ok := p.(peerRejecter); ok {
			_ = rej.PeerReject(r.offer.SLA.ID)
		}
	}
}

// isCapacityError reports whether err stems from resource shortage (which
// a neighbor with different capacity might not share).
func isCapacityError(err error) bool {
	return errors.Is(err, ErrCannotHonor) || errors.Is(err, ErrBestEffortFull)
}

// Mount installs the federation's SOAP handlers: everything the home
// broker serves, with service_request replaced by the federated version —
// offers carry an extra Domain so clients know where to conclude the SLA.
func (f *Federation) Mount(mux *soapx.Mux) {
	f.home.Mount(mux)
	mux.Handle("service_request", func(body []byte) (any, error) {
		var req xmlmsg.ServiceRequestXML
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		r, err := decodeRequest(req)
		if err != nil {
			return nil, err
		}
		offer, err := f.RequestService(r)
		if err != nil {
			return nil, err
		}
		return &xmlmsg.ServiceOfferXML{
			SLA:     sla.EncodeDocument(offer.SLA),
			Price:   offer.Price,
			Expires: offer.Expires.Format(xmlmsg.TimeLayout),
			Domain:  offer.Domain,
		}, nil
	})
}

// PeerClient adapts a remote broker client to the Peer interface.
type PeerClient struct {
	// Domain is the remote domain's name.
	Domain string
	// Client is the SOAP client pointed at the remote broker.
	Client *Client
}

// PeerDomain implements Peer.
func (p *PeerClient) PeerDomain() string { return p.Domain }

// PeerRequest implements Peer: the remote offer's wire form is decoded
// back into an Offer (the remote broker holds the session; only the
// document and price travel).
func (p *PeerClient) PeerRequest(req Request) (*Offer, error) {
	resp, err := p.Client.RequestService(req)
	if err != nil {
		// A recovering remote broker answers with a SOAP fault carrying
		// the ErrPeerUnavailable marker; map it back to the typed error so
		// the caller's retry policy sees a transient refusal, not a dead
		// peer.
		if strings.Contains(err.Error(), peerUnavailableMsg) {
			return nil, fmt.Errorf("%w: peer %q", ErrPeerUnavailable, p.Domain)
		}
		return nil, err
	}
	doc, err := decodeOfferSLA(resp)
	if err != nil {
		return nil, err
	}
	offer := &Offer{SLA: doc, Price: resp.Price}
	if resp.Expires != "" {
		if t, err := time.Parse(xmlmsg.TimeLayout, resp.Expires); err == nil {
			offer.Expires = t
		}
	}
	return offer, nil
}

// PeerReject implements peerRejecter: a losing concurrent offer is
// rejected on the remote broker so its temporary reservation is freed
// immediately instead of lapsing with the confirm window.
func (p *PeerClient) PeerReject(id sla.ID) error {
	_, err := p.Client.Act(id, "reject", "lost federation race")
	return err
}

// PeerLoad fetches the remote broker's load report for front-tier
// placement.
func (p *PeerClient) PeerLoad() (LoadReport, error) {
	return p.Client.LoadReport()
}

var _ Peer = (*PeerClient)(nil)
var _ peerRejecter = (*PeerClient)(nil)
var _ peerRejecter = (*Broker)(nil)
