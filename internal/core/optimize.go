package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file implements the §5.3 resource-allocation optimization: each
// active (controlled-load) service j records acceptable quality levels per
// parameter (range or list), each parameter has a unit rate c_i, and the
// broker selects quality levels to
//
//	maximize  Σ_j Σ_i c_ij · p_ij
//	s.t.      Σ_j p_ij ≤ Cap_i          for every dimension i
//	          p_ij ∈ allowed_ij          for every service j, dimension i
//
// "The AQoS implements this optimization by varying the resource quality
// selection, based on supplied levels of quality in the SLA, which aims to
// maximize overall monetary profit, while maintaining the user's
// acceptable quality."
//
// This is a multidimensional multiple-choice knapsack. Exact solves it by
// branch-and-bound (used for small instances and as the test oracle);
// Greedy is the production heuristic: start every service at its floor,
// repeatedly apply the most profitable feasible single-step upgrade, then
// hill-climb.

// OptService is one service's entry in the optimization problem.
type OptService struct {
	ID sla.ID
	// Spec supplies the acceptable quality levels.
	Spec sla.Spec
	// Rates are the per-unit rates c_i for this service's class.
	Rates pricing.Rates
	// RangeSteps discretizes range parameters (default 4 levels).
	RangeSteps int
}

// choices returns the candidate capacity levels per dimension (ascending).
func (s OptService) choices() map[resource.Kind][]float64 {
	steps := s.RangeSteps
	if steps <= 0 {
		steps = 4
	}
	out := make(map[resource.Kind][]float64, len(s.Spec.Params))
	for k, p := range s.Spec.Params {
		out[k] = p.Choices(steps)
	}
	return out
}

// OptProblem is a §5.3 optimization instance.
type OptProblem struct {
	Services []OptService
	// Capacity bounds Σ_j p_ij per dimension.
	Capacity resource.Capacity
}

// OptResult is a solution.
type OptResult struct {
	// Assignment maps each service to its selected quality vector.
	Assignment map[sla.ID]resource.Capacity
	// Profit is Σ_j Σ_i c_ij · p_ij at the assignment.
	Profit float64
}

// ErrInfeasible is returned when even every service at its floor exceeds
// capacity.
var ErrInfeasible = errors.New("core: optimization infeasible at floors")

// floorsOf returns each service's floor vector and verifies feasibility.
func (p OptProblem) floorsOf() (map[sla.ID]resource.Capacity, error) {
	floors := make(map[sla.ID]resource.Capacity, len(p.Services))
	var sum resource.Capacity
	for _, s := range p.Services {
		f := s.Spec.Floor()
		floors[s.ID] = f
		sum = sum.Add(f)
	}
	if !sum.FitsIn(p.Capacity) {
		return nil, fmt.Errorf("%w: floors need %v, capacity %v", ErrInfeasible, sum, p.Capacity)
	}
	return floors, nil
}

func profitOf(rates pricing.Rates, c resource.Capacity) float64 {
	return rates.Cost(c)
}

// Greedy solves the problem heuristically: floors first, then repeated
// best marginal-profit upgrades, then a hill-climbing pass that retries
// skipped upgrades until no improvement remains.
func Greedy(p OptProblem) (OptResult, error) {
	floors, err := p.floorsOf()
	if err != nil {
		return OptResult{}, err
	}
	assign := make(map[sla.ID]resource.Capacity, len(p.Services))
	var used resource.Capacity
	for id, f := range floors {
		assign[id] = f
		used = used.Add(f)
	}

	type upgrade struct {
		svc     int
		kind    resource.Kind
		to      float64
		gain    float64
		cost    float64 // capacity consumed in that dimension
		density float64
	}
	// Iterate until no feasible upgrade improves profit.
	for {
		best := upgrade{density: -1}
		for si, s := range p.Services {
			cur := assign[s.ID]
			for k, levels := range s.choices() {
				curV := cur.Get(k)
				// The next level above the current one.
				for _, lv := range levels {
					if lv <= curV+resource.Epsilon {
						continue
					}
					delta := lv - curV
					if used.Get(k)+delta > p.Capacity.Get(k)+resource.Epsilon {
						break // levels ascend; larger ones also fail
					}
					gain := s.Rates.Rate(k) * delta
					density := gain / delta
					if gain > resource.Epsilon && density > best.density {
						best = upgrade{svc: si, kind: k, to: lv, gain: gain, cost: delta, density: density}
					}
					break // only consider the immediate next level per (svc, kind)
				}
			}
		}
		if best.density < 0 {
			break
		}
		s := p.Services[best.svc]
		cur := assign[s.ID]
		assign[s.ID] = cur.With(best.kind, best.to)
		used = used.With(best.kind, used.Get(best.kind)+best.cost)
	}

	total := 0.0
	for _, s := range p.Services {
		total += profitOf(s.Rates, assign[s.ID])
	}
	return OptResult{Assignment: assign, Profit: total}, nil
}

// exactLimit bounds the instance size Exact accepts; beyond it the search
// space explodes and callers should use Greedy.
const exactLimit = 14

// Exact solves the problem optimally by depth-first branch-and-bound over
// per-service quality combinations. It returns an error for instances with
// more than exactLimit services.
func Exact(p OptProblem) (OptResult, error) {
	if len(p.Services) > exactLimit {
		return OptResult{}, fmt.Errorf("core: Exact limited to %d services, got %d", exactLimit, len(p.Services))
	}
	if _, err := p.floorsOf(); err != nil {
		return OptResult{}, err
	}

	// Enumerate each service's candidate vectors (cartesian product of
	// per-dimension choices), deduplicated and sorted by descending
	// profit.
	type cand struct {
		cap    resource.Capacity
		profit float64
	}
	svcCands := make([][]cand, len(p.Services))
	for si, s := range p.Services {
		kinds := s.Spec.Kinds()
		var vectors []resource.Capacity
		vectors = append(vectors, resource.Capacity{})
		choices := s.choices()
		for _, k := range kinds {
			var next []resource.Capacity
			for _, v := range vectors {
				for _, lv := range choices[k] {
					next = append(next, v.With(k, lv))
				}
			}
			vectors = next
		}
		cands := make([]cand, 0, len(vectors))
		for _, v := range vectors {
			cands = append(cands, cand{cap: v, profit: profitOf(s.Rates, v)})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].profit > cands[j].profit })
		svcCands[si] = cands
	}

	// maxRemaining[i] = Σ_{j ≥ i} best profit of service j (capacity
	// ignored) — the bound for pruning.
	maxRemaining := make([]float64, len(p.Services)+1)
	for i := len(p.Services) - 1; i >= 0; i-- {
		maxRemaining[i] = maxRemaining[i+1]
		if len(svcCands[i]) > 0 {
			maxRemaining[i] += svcCands[i][0].profit
		}
	}

	var (
		bestProfit = math.Inf(-1)
		bestPick   = make([]int, len(p.Services))
		pick       = make([]int, len(p.Services))
	)
	var dfs func(i int, used resource.Capacity, profit float64) bool
	dfs = func(i int, used resource.Capacity, profit float64) bool {
		if profit+maxRemaining[i] <= bestProfit+1e-12 {
			return false
		}
		if i == len(p.Services) {
			if profit > bestProfit {
				bestProfit = profit
				copy(bestPick, pick)
			}
			return false
		}
		feasibleFound := false
		for ci, c := range svcCands[i] {
			nu := used.Add(c.cap)
			if !nu.FitsIn(p.Capacity) {
				continue
			}
			feasibleFound = true
			pick[i] = ci
			dfs(i+1, nu, profit+c.profit)
		}
		return feasibleFound
	}
	dfs(0, resource.Capacity{}, 0)

	if math.IsInf(bestProfit, -1) {
		return OptResult{}, ErrInfeasible
	}
	res := OptResult{Assignment: make(map[sla.ID]resource.Capacity, len(p.Services)), Profit: bestProfit}
	for si, s := range p.Services {
		res.Assignment[s.ID] = svcCands[si][bestPick[si]].cap
	}
	return res, nil
}

// Baselines for the C4 experiment.

// BaselineMinimum assigns every service its floor — a provider that never
// upgrades anyone.
func BaselineMinimum(p OptProblem) (OptResult, error) {
	floors, err := p.floorsOf()
	if err != nil {
		return OptResult{}, err
	}
	total := 0.0
	for _, s := range p.Services {
		total += profitOf(s.Rates, floors[s.ID])
	}
	return OptResult{Assignment: floors, Profit: total}, nil
}

// BaselineFirstFit walks services in arrival order giving each its best
// quality that still fits — a provider with no global view.
func BaselineFirstFit(p OptProblem) (OptResult, error) {
	floors, err := p.floorsOf()
	if err != nil {
		return OptResult{}, err
	}
	assign := make(map[sla.ID]resource.Capacity, len(p.Services))
	var used resource.Capacity
	// Reserve every floor first so later services are not starved below
	// their SLA.
	for id, f := range floors {
		assign[id] = f
		used = used.Add(f)
	}
	for _, s := range p.Services {
		cur := assign[s.ID]
		for k, levels := range s.choices() {
			// Highest level that fits.
			for i := len(levels) - 1; i >= 0; i-- {
				lv := levels[i]
				if lv <= cur.Get(k) {
					break
				}
				delta := lv - cur.Get(k)
				if used.Get(k)+delta <= p.Capacity.Get(k)+resource.Epsilon {
					used = used.With(k, used.Get(k)+delta)
					cur = cur.With(k, lv)
					break
				}
			}
		}
		assign[s.ID] = cur
	}
	total := 0.0
	for _, s := range p.Services {
		total += profitOf(s.Rates, assign[s.ID])
	}
	return OptResult{Assignment: assign, Profit: total}, nil
}
