// Package core implements the paper's primary contribution: the AQoS
// broker of the G-QoSM framework, with the QoS adaptation scheme of §5 —
// the capacity-partition adaptation algorithm (Algorithm 1), the
// resource-allocation optimization heuristic (§5.3), the three adaptation
// scenarios (§4), SLA negotiation and establishment, the Reservation
// System over GARA (§3.1), and SLA-Verif conformance monitoring (§3.2).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gqosm/internal/resource"
)

// CapacityPlan is the administrator's partition of the total resource
// capacity (Algorithm 1): R = C_G + C_A + C_B, where C_G serves
// 'guaranteed' users, C_A is the adaptive reserve "based on the specified
// rate of resource failure or congestion", and C_B is the minimum capacity
// for 'best effort' users.
type CapacityPlan struct {
	Guaranteed resource.Capacity // C_G
	Adaptive   resource.Capacity // C_A
	BestEffort resource.Capacity // C_B
}

// Total returns R = C_G + C_A + C_B.
func (p CapacityPlan) Total() resource.Capacity {
	return p.Guaranteed.Add(p.Adaptive).Add(p.BestEffort)
}

// Validate checks the partition.
func (p CapacityPlan) Validate() error {
	if !p.Guaranteed.IsNonNegative() || !p.Adaptive.IsNonNegative() || !p.BestEffort.IsNonNegative() {
		return errors.New("core: capacity plan has negative components")
	}
	if p.Total().IsZero() {
		return errors.New("core: capacity plan is empty")
	}
	return nil
}

// PlanForFailureRate sizes the adaptive reserve from the administrator's
// expected failure/congestion rate f (fraction of total capacity expected
// to be unavailable) and best-effort minimum fraction b, dividing total as
// C_A = f·R, C_B = b·R, C_G = the rest.
func PlanForFailureRate(total resource.Capacity, failureRate, bestEffortFrac float64) (CapacityPlan, error) {
	if failureRate < 0 || bestEffortFrac < 0 || failureRate+bestEffortFrac >= 1 {
		return CapacityPlan{}, fmt.Errorf("core: invalid fractions f=%g b=%g", failureRate, bestEffortFrac)
	}
	a := total.Scale(failureRate)
	b := total.Scale(bestEffortFrac)
	return CapacityPlan{
		Guaranteed: total.Sub(a).Sub(b),
		Adaptive:   a,
		BestEffort: b,
	}, nil
}

// Allocator errors.
var (
	// ErrCannotHonor is returned when even the SLA floor g(u) cannot be
	// allocated ("guarantees cannot be honored").
	ErrCannotHonor = errors.New("core: guaranteed capacity cannot be honored")
	// ErrBestEffortFull is returned when a best-effort request exceeds
	// the borrowable capacity.
	ErrBestEffortFull = errors.New("core: best-effort capacity exhausted")
	// ErrUnknownUser is returned for releases of unknown allocations.
	ErrUnknownUser = errors.New("core: unknown allocation")
)

// Preemption records a reduction of a best-effort allocation caused by
// guaranteed-class demand reclaiming borrowed capacity.
type Preemption struct {
	User    string
	Before  resource.Capacity
	After   resource.Capacity
	Evicted bool // the allocation was removed entirely
}

// GrantResult reports the outcome of a guaranteed allocation.
type GrantResult struct {
	// Granted is the capacity actually allocated (== requested, or the
	// SLA floor when the full request could not be honored).
	Granted resource.Capacity
	// Shortfall is the unsatisfied remainder (requested − granted).
	Shortfall resource.Capacity
	// AdaptiveUsed reports whether the grant draws on the adaptive
	// reserve (i.e. Adapt() ran).
	AdaptiveUsed bool
	// Preempted lists best-effort allocations reduced to make room.
	Preempted []Preemption
}

type beAlloc struct {
	user    string
	granted resource.Capacity
	seq     int
}

// Allocator is the Algorithm-1 engine: it tracks instantaneous capacity
// allocations c(u,t) for guaranteed users and b(u,t) for best-effort
// users against the partition, implements Adapt(), and enforces the
// dynamic-borrowing policy ("the extra reserved capacity is used by 'best
// effort' users as long as it is not needed by 'guaranteed' users"). It is
// safe for concurrent use.
type Allocator struct {
	plan CapacityPlan

	mu         sync.Mutex
	offline    resource.Capacity // failed capacity, charged against C_G
	guaranteed map[string]resource.Capacity
	floors     map[string]resource.Capacity
	bestEffort []beAlloc
	nextSeq    int

	// policy answers Algorithm-1 admissions (never nil; NewAllocator
	// installs the paper default). shadow, when set, is consulted on the
	// same immutable PartitionView at every admission; onShadow records
	// whether its (clamped) answer diverged. Both are read under mu.
	policy   Policy
	shadow   Policy
	onShadow func(family string, diverged bool)

	// view is the atomically published read snapshot: every mutator
	// recomputes it under mu just before unlocking, so read methods
	// (Snapshot, Utilization, LoadFactor, AvailableGuaranteed,
	// AdmissionBound, AvailableBestEffort, Coverage, Offline) serve
	// lock-free without ever contending with admissions. The values are
	// computed by the same locked helpers the admission path uses — a
	// full recomputation, never an incremental float sum — so a
	// happens-after read returns bit-identical results to the locked
	// path (the post-drain exact-equality checks depend on this).
	//
	// Admission decisions themselves (AllocateGuaranteed and friends)
	// still read the authoritative state under mu; the view only feeds
	// advisory reads — placement ranking, quality pre-clamping, metric
	// gauges — whose outcomes admission re-validates under the lock.
	view atomic.Pointer[allocView]
}

// allocView is one immutable published snapshot of every derived
// read-side quantity. [3]PoolUsage keeps the whole view in a single
// allocation.
type allocView struct {
	pools       [3]PoolUsage // G, A, B — the Snapshot() rows
	utilization resource.Capacity
	loadFactor  float64
	availG      resource.Capacity
	bound       resource.Capacity
	availBE     resource.Capacity
	coverage    resource.Capacity
	offline     resource.Capacity
}

// publishLocked recomputes and atomically publishes the read view.
// Callers must hold a.mu; every mutating operation calls it after its
// last state change so the published view is never stale with respect
// to a happens-after reader.
func (a *Allocator) publishLocked() {
	v := &allocView{offline: a.offline}

	gEff := a.effectiveGLocked()
	gDemand := a.gDemandLocked()
	bound := a.gBoundLocked()
	be := a.beUsedLocked()

	// Snapshot rows (see Snapshot for the accounting rule).
	gInG := gDemand.Min(gEff)
	gInA := a.adaptiveUsedLocked()
	beInB := be.Min(a.plan.BestEffort)
	rem := be.Sub(beInB).ClampMin(resource.Capacity{})
	freeG := gEff.Sub(gInG).ClampMin(resource.Capacity{})
	beInG := rem.Min(freeG)
	beInA := rem.Sub(beInG).ClampMin(resource.Capacity{})
	v.pools = [3]PoolUsage{
		{Pool: "G", Capacity: a.plan.Guaranteed, Offline: a.offline, Guaranteed: gInG, BestEffort: beInG},
		{Pool: "A", Capacity: a.plan.Adaptive, Guaranteed: gInA, BestEffort: beInA},
		{Pool: "B", Capacity: a.plan.BestEffort, BestEffort: beInB},
	}

	// Utilization: used / online per dimension.
	online := a.plan.Total().Sub(a.offline)
	used := gDemand.Add(be)
	for _, k := range resource.Kinds {
		if online.Get(k) > resource.Epsilon {
			v.utilization = v.utilization.With(k, used.Get(k)/online.Get(k))
		}
	}

	// Load factor: max over dimensions of demand / bound.
	for _, k := range resource.Kinds {
		if bk := bound.Get(k); bk > resource.Epsilon {
			if f := gDemand.Get(k) / bk; f > v.loadFactor {
				v.loadFactor = f
			}
		}
	}

	v.availG = bound.Sub(gDemand).ClampMin(resource.Capacity{})
	v.bound = bound
	v.availBE = a.beAvailableLocked().Sub(be).ClampMin(resource.Capacity{})

	// Coverage: min(1, deliverable / demand) per dimension.
	deliverable := gEff.Add(a.plan.Adaptive)
	v.coverage = resource.Capacity{CPU: 1, MemoryMB: 1, DiskGB: 1, BandwidthMbps: 1}
	for _, k := range resource.Kinds {
		if d := gDemand.Get(k); d > resource.Epsilon {
			if ratio := deliverable.Get(k) / d; ratio < 1 {
				v.coverage = v.coverage.With(k, ratio)
			}
		}
	}

	a.view.Store(v)
}

// NewAllocator returns an allocator over the given plan.
func NewAllocator(plan CapacityPlan) (*Allocator, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	a := &Allocator{
		plan:       plan,
		policy:     defaultPolicy,
		guaranteed: make(map[string]resource.Capacity),
		floors:     make(map[string]resource.Capacity),
	}
	a.publishLocked() // no concurrency yet; publish the idle view
	return a, nil
}

// SetPolicy installs the active partition policy (nil restores the paper
// default). Call before serving traffic.
func (a *Allocator) SetPolicy(p Policy) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p == nil {
		p = defaultPolicy
	}
	a.policy = p
}

// SetShadow installs a candidate policy consulted in shadow at every
// admission; record receives the divergence verdicts. Passing nil
// disables shadowing. Record must be cheap and must not call back into
// the allocator: it runs under a.mu.
func (a *Allocator) SetShadow(p Policy, record func(family string, diverged bool)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.shadow = p
	if record == nil {
		record = func(string, bool) {}
	}
	a.onShadow = record
}

// Plan returns the partition.
func (a *Allocator) Plan() CapacityPlan { return a.plan }

// BEState is one best-effort grant row in allocation order, exported for
// durability snapshots (the order is the LIFO preemption order, so it
// must survive recovery bit-exactly).
type BEState struct {
	User    string
	Granted resource.Capacity
	Seq     int
}

// ExportAux returns the allocator state that cannot be rebuilt from the
// session documents alone: failed capacity, the best-effort table in
// allocation order, and the preemption-order counter.
func (a *Allocator) ExportAux() (offline resource.Capacity, be []BEState, nextSeq int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	be = make([]BEState, 0, len(a.bestEffort))
	for _, b := range a.bestEffort {
		be = append(be, BEState{User: b.user, Granted: b.granted, Seq: b.seq})
	}
	return a.offline, be, a.nextSeq
}

// Restore overwrites the allocator's full state from recovered data and
// republishes the read view. The guaranteed/floor maps come from the
// replayed session documents; the auxiliary state from the latest
// journaled ExportAux image. No feasibility re-check happens here — the
// recovered state was feasible when journaled, and the invariant oracle
// re-verifies after recovery.
func (a *Allocator) Restore(guaranteed, floors map[string]resource.Capacity, offline resource.Capacity, be []BEState, nextSeq int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.guaranteed = make(map[string]resource.Capacity, len(guaranteed))
	for u, c := range guaranteed {
		a.guaranteed[u] = c
	}
	a.floors = make(map[string]resource.Capacity, len(floors))
	for u, c := range floors {
		a.floors[u] = c
	}
	a.offline = offline.Min(a.plan.Guaranteed).ClampMin(resource.Capacity{})
	a.bestEffort = make([]beAlloc, 0, len(be))
	for _, b := range be {
		a.bestEffort = append(a.bestEffort, beAlloc{user: b.User, granted: b.Granted, seq: b.Seq})
	}
	a.nextSeq = nextSeq
	a.publishLocked()
}

// SetOffline marks capacity as failed/inaccessible (the §5.6 t2 event).
// Failures are charged against the guaranteed pool C_G — the case the
// adaptive reserve exists to absorb. Existing guaranteed grants are never
// reduced by failures (their SLAs are honored from C_A via Adapt());
// best-effort borrowers are preempted as needed. The returned preemptions
// describe the best-effort reductions.
func (a *Allocator) SetOffline(c resource.Capacity) []Preemption {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.offline = c.Min(a.plan.Guaranteed).ClampMin(resource.Capacity{})
	out := a.rebalanceLocked()
	a.publishLocked()
	return out
}

// Offline returns the currently failed capacity.
func (a *Allocator) Offline() resource.Capacity {
	return a.view.Load().offline
}

// effectiveG returns C_G minus failed capacity.
func (a *Allocator) effectiveGLocked() resource.Capacity {
	return a.plan.Guaranteed.Sub(a.offline).ClampMin(resource.Capacity{})
}

func (a *Allocator) gDemandLocked() resource.Capacity {
	var sum resource.Capacity
	for _, c := range a.guaranteed {
		sum = sum.Add(c)
	}
	return sum
}

func (a *Allocator) beUsedLocked() resource.Capacity {
	var sum resource.Capacity
	for _, b := range a.bestEffort {
		sum = sum.Add(b.granted)
	}
	return sum
}

// adaptiveUsedLocked is the portion of guaranteed demand spilling past
// C_G_eff into C_A — the Adapt() transfer of Algorithm 1.
func (a *Allocator) adaptiveUsedLocked() resource.Capacity {
	return a.gDemandLocked().Sub(a.effectiveGLocked()).ClampMin(resource.Capacity{}).Min(a.plan.Adaptive)
}

// beAvailableLocked is the capacity best-effort users may hold: their own
// C_B, plus the adaptive reserve not needed by guaranteed users, plus idle
// guaranteed capacity (dynamic borrowing).
func (a *Allocator) beAvailableLocked() resource.Capacity {
	gEff := a.effectiveGLocked()
	gDemand := a.gDemandLocked()
	freeG := gEff.Sub(gDemand).ClampMin(resource.Capacity{})
	freeA := a.plan.Adaptive.Sub(a.adaptiveUsedLocked()).ClampMin(resource.Capacity{})
	return a.plan.BestEffort.Add(freeA).Add(freeG)
}

// gBoundLocked is the admission bound for guaranteed demand:
// min(C_G, C_G_eff + C_A) per dimension. New agreements never consume the
// adaptive reserve — it exists "based on the specified rate of resource
// failure or congestion" to give guaranteed users "extra assurances" — but
// when failures shrink C_G the reserve covers already-admitted demand
// (Adapt()), so admission up to nominal C_G continues as long as the
// shortfall stays within C_A.
func (a *Allocator) gBoundLocked() resource.Capacity {
	return a.plan.Guaranteed.Min(a.effectiveGLocked().Add(a.plan.Adaptive))
}

// AllocateGuaranteed implements Allocate_Guaranteed_Resource(c(u,t),
// g(u)): it grants the requested capacity when guaranteed demand stays
// within the admission bound (nominal C_G, with failure shortfalls covered
// from the adaptive reserve via Adapt()); otherwise it grants only the SLA
// floor g(u) and reports the shortfall. It fails with ErrCannotHonor when
// even g(u) does not fit. Re-allocating for an existing user replaces the
// previous grant. floor must fit in requested.
func (a *Allocator) AllocateGuaranteed(user string, requested, floor resource.Capacity) (GrantResult, error) {
	if !floor.FitsIn(requested) {
		return GrantResult{}, fmt.Errorf("core: floor %v exceeds request %v", floor, requested)
	}
	if !requested.IsNonNegative() {
		return GrantResult{}, fmt.Errorf("core: negative request %v", requested)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	res, err := a.allocateGuaranteedLocked(user, requested, floor)
	if err != nil {
		return GrantResult{}, err
	}
	res.Preempted = a.rebalanceLocked()
	a.publishLocked()
	return res, nil
}

// allocateGuaranteedLocked is the Algorithm-1 admission core shared by
// AllocateGuaranteed and AllocateGuaranteedBatch. The caller holds a.mu
// and is responsible for running rebalanceLocked + publishLocked after
// its grant(s) — that is exactly what the batch path amortizes.
func (a *Allocator) allocateGuaranteedLocked(user string, requested, floor resource.Capacity) (GrantResult, error) {
	prev, hadPrev := a.guaranteed[user]
	base := a.gDemandLocked()
	if hadPrev {
		base = base.Sub(prev)
	}
	gEff := a.effectiveGLocked()
	bound := a.gBoundLocked()

	view := PartitionView{
		Plan:       a.plan,
		Offline:    a.offline,
		Demand:     base,
		EffectiveG: gEff,
		Bound:      bound,
	}
	kind := clampGrant(a.policy.PartitionGrant(view, requested, floor), view, requested, floor)
	if a.shadow != nil {
		cand := clampGrant(a.shadow.PartitionGrant(view, requested, floor), view, requested, floor)
		a.onShadow("partition", cand != kind)
	}

	var res GrantResult
	switch kind {
	case GrantRequested:
		// Σ c(u,t) ≤ C_G: "c(u,t) capacity must be given". When
		// failures leave Σ c(u,t) > C_G_eff, Adapt() transfers
		// min(C_A, −net) from A to G — the grant stands either way.
		res.Granted = requested
		res.AdaptiveUsed = !base.Add(requested).FitsIn(gEff)
	case GrantFloor:
		// The full request exceeds the admission bound: "only g(u)
		// capacity is given"; the rest is the caller's to re-request
		// later.
		res.Granted = floor
		res.Shortfall = requested.Sub(floor)
		res.AdaptiveUsed = !base.Add(floor).FitsIn(gEff)
	default:
		if hadPrev {
			// Leave the previous grant untouched.
			return GrantResult{}, fmt.Errorf("%w: user %s needs %v, only %v guaranteed-capacity available",
				ErrCannotHonor, user, floor, bound.Sub(base).ClampMin(resource.Capacity{}))
		}
		return GrantResult{}, fmt.Errorf("%w: user %s needs floor %v, only %v available",
			ErrCannotHonor, user, floor, bound.Sub(base).ClampMin(resource.Capacity{}))
	}

	a.guaranteed[user] = res.Granted
	a.floors[user] = floor
	return res, nil
}

// clampGrant demotes a policy's admission answer until it respects the
// hard ceiling C_G_eff + C_A — the most the shard can physically deliver
// to guaranteed demand (the invariant oracle's per-shard bound). The
// paper policy's own bound is a subset of the ceiling, so its answers
// pass through unchanged; an aggressive candidate can at most be walked
// down requested → floor → refuse.
func clampGrant(kind GrantKind, v PartitionView, requested, floor resource.Capacity) GrantKind {
	ceiling := v.EffectiveG.Add(v.Plan.Adaptive)
	if kind == GrantRequested && !v.Demand.Add(requested).FitsIn(ceiling) {
		kind = GrantFloor
	}
	if kind == GrantFloor && !v.Demand.Add(floor).FitsIn(ceiling) {
		kind = GrantRefuse
	}
	return kind
}

// GuaranteedAsk is one member of a batch admission (see
// AllocateGuaranteedBatch).
type GuaranteedAsk struct {
	User      string
	Requested resource.Capacity
	Floor     resource.Capacity
}

// AllocateGuaranteedBatch admits asks in order under ONE critical
// section — the group-commit admission pass. Each ask receives exactly
// the grant a sequence of individual AllocateGuaranteed calls would
// have produced (the book updates between members), but the
// per-admission lock acquisition, best-effort rebalance and read-view
// publication are paid once per batch instead of once per request.
// grants[i] / errs[i] report member i's outcome; failed members
// (ErrCannotHonor, validation) leave the book untouched. The single
// rebalance's preemptions are returned in aggregate rather than
// attached to any one grant (every grant's Preempted field is nil).
func (a *Allocator) AllocateGuaranteedBatch(asks []GuaranteedAsk) (grants []GrantResult, errs []error, preempted []Preemption) {
	grants = make([]GrantResult, len(asks))
	errs = make([]error, len(asks))
	a.mu.Lock()
	defer a.mu.Unlock()
	granted := false
	for i, ask := range asks {
		if !ask.Floor.FitsIn(ask.Requested) {
			errs[i] = fmt.Errorf("core: floor %v exceeds request %v", ask.Floor, ask.Requested)
			continue
		}
		if !ask.Requested.IsNonNegative() {
			errs[i] = fmt.Errorf("core: negative request %v", ask.Requested)
			continue
		}
		grants[i], errs[i] = a.allocateGuaranteedLocked(ask.User, ask.Requested, ask.Floor)
		if errs[i] == nil {
			granted = true
		}
	}
	if granted {
		preempted = a.rebalanceLocked()
		a.publishLocked()
	}
	return grants, errs, preempted
}

// ReleaseGuaranteed frees a guaranteed user's allocation (service
// termination — scenario 2's trigger).
func (a *Allocator) ReleaseGuaranteed(user string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.guaranteed[user]; !ok {
		return fmt.Errorf("%w: guaranteed %q", ErrUnknownUser, user)
	}
	delete(a.guaranteed, user)
	delete(a.floors, user)
	a.publishLocked()
	return nil
}

// AllocateBestEffort implements Allocate_Best_Effort_Resource(b(u,t)):
// the request is granted iff it fits in C_B plus currently idle
// adaptive/guaranteed capacity; otherwise "cannot allocate the required
// capacity".
func (a *Allocator) AllocateBestEffort(user string, requested resource.Capacity) error {
	if !requested.IsNonNegative() || requested.IsZero() {
		return fmt.Errorf("core: bad best-effort request %v", requested)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	avail := a.beAvailableLocked().Sub(a.beUsedLocked())
	if !requested.FitsIn(avail) {
		return fmt.Errorf("%w: requested %v, available %v", ErrBestEffortFull, requested, avail)
	}
	a.nextSeq++
	a.bestEffort = append(a.bestEffort, beAlloc{user: user, granted: requested, seq: a.nextSeq})
	a.publishLocked()
	return nil
}

// ReleaseBestEffort frees a best-effort user's allocations.
func (a *Allocator) ReleaseBestEffort(user string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.bestEffort[:0]
	found := false
	for _, b := range a.bestEffort {
		if b.user == user {
			found = true
			continue
		}
		kept = append(kept, b)
	}
	a.bestEffort = kept
	if !found {
		return fmt.Errorf("%w: best-effort %q", ErrUnknownUser, user)
	}
	a.publishLocked()
	return nil
}

// rebalanceLocked preempts best-effort borrowers (most recent first) until
// total best-effort usage fits the borrowable capacity. It returns the
// preemptions applied.
func (a *Allocator) rebalanceLocked() []Preemption {
	var out []Preemption
	over := a.beUsedLocked().Sub(a.beAvailableLocked()).ClampMin(resource.Capacity{})
	if over.IsZero() {
		return nil
	}
	// LIFO: newest borrowers lose first.
	order := make([]int, len(a.bestEffort))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return a.bestEffort[order[i]].seq > a.bestEffort[order[j]].seq
	})
	for _, idx := range order {
		if over.IsZero() {
			break
		}
		b := &a.bestEffort[idx]
		cut := b.granted.Min(over)
		if cut.IsZero() {
			continue
		}
		after := b.granted.Sub(cut)
		out = append(out, Preemption{
			User:    b.user,
			Before:  b.granted,
			After:   after,
			Evicted: after.IsZero(),
		})
		b.granted = after
		over = over.Sub(cut).ClampMin(resource.Capacity{})
	}
	kept := a.bestEffort[:0]
	for _, b := range a.bestEffort {
		if !b.granted.IsZero() {
			kept = append(kept, b)
		}
	}
	a.bestEffort = kept
	return out
}

// PoolUsage reports, for one partition pool, how much capacity each class
// currently occupies — the per-pool g/b rows of the §5.6 measurement
// tables.
type PoolUsage struct {
	Pool       string // "G", "A", "B"
	Capacity   resource.Capacity
	Offline    resource.Capacity
	Guaranteed resource.Capacity // used by guaranteed-class demand
	BestEffort resource.Capacity // used by best-effort borrowers
}

// Free returns the pool's idle online capacity.
func (u PoolUsage) Free() resource.Capacity {
	return u.Capacity.Sub(u.Offline).Sub(u.Guaranteed).Sub(u.BestEffort).ClampMin(resource.Capacity{})
}

// Snapshot reports current usage by pool. Accounting rule: guaranteed
// demand fills G then spills into A (the Adapt() transfer); best-effort
// fills B, then idle G, then idle A — the adaptive reserve is lent last so
// it stays available to absorb failures (this ordering reproduces the
// per-pool g/b rows of the §5.6 measurement list: at t0, best-effort
// demand of 11 shows as 5 in B, 5 in idle G, 1 in A).
func (a *Allocator) Snapshot() []PoolUsage {
	v := a.view.Load()
	out := make([]PoolUsage, len(v.pools))
	copy(out, v.pools[:])
	return out
}

// Utilization returns total allocated capacity divided by online capacity,
// per dimension (dimensions with zero capacity report zero).
func (a *Allocator) Utilization() resource.Capacity {
	return a.view.Load().utilization
}

// GuaranteedAllocation returns the current grant for a guaranteed user.
func (a *Allocator) GuaranteedAllocation(user string) (resource.Capacity, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.guaranteed[user]
	return c, ok
}

// BestEffortAllocation returns the total granted to a best-effort user.
func (a *Allocator) BestEffortAllocation(user string) (resource.Capacity, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var sum resource.Capacity
	found := false
	for _, b := range a.bestEffort {
		if b.user == user {
			sum = sum.Add(b.granted)
			found = true
		}
	}
	return sum, found
}

// AvailableGuaranteed reports the admission headroom for new guaranteed
// demand — the Available_Guaranteed_Resource check against the admission
// bound (see gBoundLocked).
func (a *Allocator) AvailableGuaranteed() resource.Capacity {
	return a.view.Load().availG
}

// AdmissionBound reports the ceiling for total guaranteed demand —
// min(C_G, C_G_eff + C_A) per dimension (see gBoundLocked). A floor that
// does not fit the bound can never be admitted, no matter how much
// compensation frees: the placement layer uses this to skip hopeless
// shards.
func (a *Allocator) AdmissionBound() resource.Capacity {
	return a.view.Load().bound
}

// LoadFactor reports how full the guaranteed partition is: the maximum
// over dimensions of (guaranteed demand / admission bound), 0 for an idle
// allocator and ≥ 1 when some dimension is saturated. The placement layer
// ranks shards by it.
func (a *Allocator) LoadFactor() float64 {
	return a.view.Load().loadFactor
}

// AvailableBestEffort reports the headroom for new best-effort demand.
func (a *Allocator) AvailableBestEffort() resource.Capacity {
	return a.view.Load().availBE
}

// Coverage returns, per dimension, the fraction of granted guaranteed
// capacity that is actually deliverable right now:
// min(1, (C_G_eff + C_A) / Σ c(u,t)). Under normal operation this is 1;
// it drops below 1 only when failures exceed what the adaptive reserve
// can absorb — the condition SLA-Verif reports as measured QoS below the
// agreed level.
func (a *Allocator) Coverage() resource.Capacity {
	return a.view.Load().coverage
}

// GuaranteedUsers returns the guaranteed users sorted by name.
func (a *Allocator) GuaranteedUsers() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.guaranteed))
	for u := range a.guaranteed {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
