package core

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMonitorTickPanicRecovery: a panic inside the management work
// (here injected through the debug hook, which RunOptimizer runs) must
// not kill the loop — the tick recovers, counts the panic, and re-arms.
// On pre-PR code the panic escapes tick and the loop dies.
func TestMonitorTickPanicRecovery(t *testing.T) {
	h := newHarness(t)
	b := h.broker
	mon := NewMonitor(b, time.Minute)
	mon.Start()
	defer mon.Stop()

	b.SetDebugHook(func(*Broker) error { panic("poisoned optimizer") })
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic escaped the tick into the clock: %v", r)
			}
		}()
		h.clock.Advance(time.Minute)
	}()
	if got := mon.Ticks(); got != 1 {
		t.Fatalf("ticks = %d, want 1", got)
	}
	if got := b.MonitorPanics(); got != 1 {
		t.Fatalf("panics = %d, want 1", got)
	}
	if h.clock.PendingTimers() == 0 {
		t.Fatal("panicking tick did not re-arm the timer")
	}

	// The loop keeps running once the fault clears.
	b.SetDebugHook(nil)
	h.clock.Advance(time.Minute)
	if got := mon.Ticks(); got != 2 {
		t.Fatalf("ticks after recovery = %d, want 2", got)
	}
	if got := b.MonitorPanics(); got != 1 {
		t.Fatalf("panics after recovery = %d, want 1", got)
	}

	// The recovered panic is visible in the exposition and the log.
	var sb strings.Builder
	if err := b.Obs().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gqosm_monitor_panics_total 1") {
		t.Fatalf("exposition missing panic counter:\n%s", sb.String())
	}
	logged := false
	for _, e := range b.Events() {
		if e.Kind == "monitor" && strings.Contains(e.Msg, "poisoned optimizer") {
			logged = true
		}
	}
	if !logged {
		t.Fatal("recovered panic not logged")
	}
}

// TestMonitorStopDuringTickDoesNotRearm drives the tick-racing-Stop
// interleaving deterministically: Stop is called from inside the tick's
// management work (via the debug hook), before the re-arm decision. The
// tick must observe the stopped flag and leave no timer behind.
func TestMonitorStopDuringTickDoesNotRearm(t *testing.T) {
	h := newHarness(t)
	b := h.broker
	mon := NewMonitor(b, time.Minute)
	mon.Start()

	b.SetDebugHook(func(*Broker) error {
		mon.Stop()
		return nil
	})
	h.clock.Advance(time.Minute)
	b.SetDebugHook(nil)

	if got := mon.Ticks(); got != 1 {
		t.Fatalf("ticks = %d, want 1", got)
	}
	if n := h.clock.PendingTimers(); n != 0 {
		t.Fatalf("pending timers after Stop-during-tick = %d, want 0", n)
	}
	h.clock.Advance(time.Hour)
	if got := mon.Ticks(); got != 1 {
		t.Fatalf("stopped monitor ticked again: %d", got)
	}
}

func TestMonitorStopThenAdvance(t *testing.T) {
	h := newHarness(t)
	mon := NewMonitor(h.broker, time.Minute)
	mon.Start()
	h.clock.Advance(time.Minute)
	if got := mon.Ticks(); got != 1 {
		t.Fatalf("ticks = %d, want 1", got)
	}
	mon.Stop()
	if n := h.clock.PendingTimers(); n != 0 {
		t.Fatalf("pending timers after Stop = %d, want 0", n)
	}
	h.clock.Advance(time.Hour)
	if got := mon.Ticks(); got != 1 {
		t.Fatalf("ticks after Stop = %d, want 1", got)
	}
	// Start after Stop is a no-op: the monitor is single-use.
	mon.Start()
	h.clock.Advance(time.Hour)
	if got := mon.Ticks(); got != 1 {
		t.Fatalf("restarted stopped monitor ticked: %d", got)
	}
}

// TestMonitorConcurrentStop races real Advance and Stop goroutines (the
// -race build is the assertion; the invariant is that ticking stops).
func TestMonitorConcurrentStop(t *testing.T) {
	h := newHarness(t)
	mon := NewMonitor(h.broker, time.Minute)
	mon.Start()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			h.clock.Advance(time.Minute)
		}
	}()
	go func() {
		defer wg.Done()
		mon.Stop()
	}()
	wg.Wait()
	final := mon.Ticks()
	h.clock.Advance(time.Hour)
	if got := mon.Ticks(); got != final {
		t.Fatalf("ticks advanced after Stop settled: %d -> %d", final, got)
	}
}
