package core

import (
	"sync"

	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// This file is the sharding layer of the broker: the domain's Algorithm-1
// state is partitioned into N independent shards, each with its own
// capacity plan, allocator, session sub-table and mutex, so admissions on
// different shards never contend. A placement layer routes each new
// request to the least-loaded shard (deterministic tie-break by shard
// index) and falls back across shards on ErrCannotHonor before declining —
// the same capacity-error forwarding the federation applies between
// domains, applied inside one domain. The Broker itself remains a thin
// coordinator owning only the cross-shard concerns: global SLA-ID issue,
// the activity log, the RunOptimizer/issuePromotions/afterRelease sweeps
// and the invariant debug hook.
//
// Lock discipline: sh.mu → sh.alloc.mu → (clock, ledger, pool, NRM), and
// routeMu / beMu / evMu / debugMu are leaf locks. Cross-shard sweeps
// (Close, Sessions, ExpireDue, the restore pass, session gauges) acquire
// shard locks strictly in ascending shard-index order and never hold two
// shard locks at once: each shard is locked, read, and unlocked before the
// next, with any follow-up work done lock-free on the collected snapshot.

// shard is one slice of the domain: an independent Algorithm-1 partition
// with its own session sub-table. All per-session state (sessions and
// open promotion offers) lives on the shard that admitted the SLA.
type shard struct {
	index int
	alloc *Allocator

	mu       sync.Mutex
	sessions map[sla.ID]*session
	// promotions holds open scenario-2(c) offers for this shard's SLAs.
	promotions map[sla.ID]pricing.PromotionOffer
}

// Split partitions the plan into n equal shares. Each pool is divided by
// n; the last share takes the remainder so the shares always sum exactly
// to the original plan (no capacity is lost to floating-point drift).
// n ≤ 1 returns the plan itself.
func (p CapacityPlan) Split(n int) []CapacityPlan {
	if n <= 1 {
		return []CapacityPlan{p}
	}
	per := CapacityPlan{
		Guaranteed: p.Guaranteed.Scale(1 / float64(n)),
		Adaptive:   p.Adaptive.Scale(1 / float64(n)),
		BestEffort: p.BestEffort.Scale(1 / float64(n)),
	}
	out := make([]CapacityPlan, n)
	rem := p
	for i := 0; i < n-1; i++ {
		out[i] = per
		rem = CapacityPlan{
			Guaranteed: rem.Guaranteed.Sub(per.Guaranteed),
			Adaptive:   rem.Adaptive.Sub(per.Adaptive),
			BestEffort: rem.BestEffort.Sub(per.BestEffort),
		}
	}
	out[n-1] = rem
	return out
}

// shardFor resolves a session ID to the shard that admitted it, or nil
// when the ID is unknown. Sessions are never removed from their shard
// (terminal sessions stay queryable), so a route, once installed, is
// stable for the session's lifetime.
func (b *Broker) shardFor(id sla.ID) *shard {
	b.routeMu.RLock()
	defer b.routeMu.RUnlock()
	return b.route[id]
}

// placementOrder returns the shards to try for a new admission, most
// attractive first. The ranking and floor filter are delegated to the
// active policy's Place (the paper's: least-loaded by
// Allocator.LoadFactor with ties broken by ascending shard index, shards
// whose admission bound can never fit the request floor dropped —
// compensation frees allocations but cannot raise the bound). The
// structural rules stay here: a non-zero 1-based hint moves that shard to
// the front even when hopeless (an explicit hint is a request to try that
// shard, and its refusal is informative), and when every shard is
// hopeless the least-loaded one is returned alone so the caller still
// gets the allocator's precise refusal.
func (b *Broker) placementOrder(hint int, floor resource.Capacity) []*shard {
	if len(b.shards) == 1 {
		return b.shards
	}
	views := make([]PlacementView, len(b.shards))
	for _, sh := range b.shards {
		views[sh.index] = PlacementView{
			Index:      sh.index,
			LoadFactor: sh.alloc.LoadFactor(),
			Bound:      sh.alloc.AdmissionBound(),
		}
	}
	ranked := b.policy.Place(views, floor)
	if b.shadowPol != nil {
		cand := b.shadowPol.Place(append([]PlacementView(nil), views...), floor)
		b.recordShadow("placement", !sameOrder(ranked, cand))
	}
	var hinted *shard
	if hint >= 1 && hint <= len(b.shards) {
		hinted = b.shards[hint-1]
	}
	out := make([]*shard, 0, len(ranked)+1)
	if hinted != nil {
		out = append(out, hinted)
	}
	for _, idx := range ranked {
		if idx < 0 || idx >= len(b.shards) {
			continue // defensive: a policy ranking outside the shard set
		}
		sh := b.shards[idx]
		if sh == hinted {
			continue
		}
		out = append(out, sh)
	}
	if len(out) == 0 {
		best := 0
		for i := 1; i < len(views); i++ {
			if views[i].LoadFactor < views[best].LoadFactor {
				best = i
			}
		}
		out = append(out, b.shards[best])
	}
	return out
}

// ShardCount returns the number of shards the domain is partitioned into.
func (b *Broker) ShardCount() int { return len(b.shards) }

// Allocators returns every shard's Algorithm-1 engine in shard-index
// order. Allocator() remains shard 0 for single-shard callers.
func (b *Broker) Allocators() []*Allocator {
	out := make([]*Allocator, len(b.shards))
	for i, sh := range b.shards {
		out[i] = sh.alloc
	}
	return out
}

// ShardSessionCounts returns the number of sessions (any state) homed on
// each shard, in shard-index order.
func (b *Broker) ShardSessionCounts() []int {
	out := make([]int, len(b.shards))
	for i, sh := range b.shards {
		sh.mu.Lock()
		out[i] = len(sh.sessions)
		sh.mu.Unlock()
	}
	return out
}

// ShardOf reports which shard (0-based) a session is homed on, or -1 for
// unknown IDs.
func (b *Broker) ShardOf(id sla.ID) int {
	if sh := b.shardFor(id); sh != nil {
		return sh.index
	}
	return -1
}
