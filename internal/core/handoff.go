package core

// Session hand-off: migrating a live SLA from one broker to another for
// cluster rebalancing. The SLA ID is globally unique (domain-prefixed),
// so the session keeps its identity; only the hosting broker changes.
//
// Protocol (driven by the cluster front tier, see internal/cluster):
//
//	source.BeginHandoff(id, target)  journal "out:<target>" intent, export state
//	target.ImportSession(state)      journal "in:<source>" intent, admit under
//	                                 the same ID, install session, clear intent
//	source.CompleteHandoff(id)       tear the source copy down, clear intent
//
// Both sides journal their intent BEFORE the step it describes, so every
// crash point recovers to exactly one owner:
//
//	source dies before the import    → out-intent + live source session;
//	                                   target has nothing: the front's
//	                                   reconcile aborts the hand-off and the
//	                                   source stays owner.
//	source dies after the import     → out-intent + live source session;
//	(the satellite-3 interleaving)     target live: the reconcile completes
//	                                   the hand-off — the recovered source
//	                                   copy is torn down, one owner remains.
//	target dies mid-import           → in-intent without a session: target
//	                                   recovery cancels the reservation
//	                                   FindByTag knows under the ID and drops
//	                                   the intent; the source aborts and
//	                                   stays owner. The tag sweep alone would
//	                                   miss it — an imported reservation
//	                                   carries the SOURCE domain's SLA prefix.
//	target dies after install        → in-intent + live session: recovery
//	                                   just drops the intent; the reconcile
//	                                   completes on the source side.
//
// The client is not re-charged: billing stayed on the source until
// teardown, and the imported document keeps its price. Degraded sessions
// are not migrated — restoring them is the source's scenario-2 duty, and
// exporting the degraded/original pair would entangle two brokers'
// adaptation ladders.

import (
	"errors"
	"fmt"
	"sort"

	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
	"gqosm/internal/wal"
)

// Hand-off errors.
var (
	// ErrHandoffPending is returned when a session already has an open
	// hand-off intent (or a lifecycle op races an in-flight migration).
	ErrHandoffPending = errors.New("core: session hand-off in progress")
	// ErrNotHandoff is returned by Complete/AbortHandoff for sessions
	// with no outbound hand-off intent.
	ErrNotHandoff = errors.New("core: no hand-off in progress")
)

// handoffIntent is one row of the journaled intent table.
type handoffIntent struct {
	// dir is "out" (this broker is draining the session toward peer) or
	// "in" (this broker is importing it from peer).
	dir  string
	peer string
}

func (h handoffIntent) encode() string { return h.dir + ":" + h.peer }

func decodeIntent(s string) handoffIntent {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return handoffIntent{dir: s[:i], peer: s[i+1:]}
		}
	}
	return handoffIntent{dir: s}
}

// HandoffState is the portable image of a live session: everything the
// target broker needs to re-admit it under the same SLA ID. The GRAM job
// does not travel — a migrated Active session is re-invoked (or left
// jobless) on the target; its source job dies with the source
// reservation.
type HandoffState struct {
	// Doc is the full SLA document (cloned; the importer re-stamps
	// Provider).
	Doc *sla.Document
	// Original is the pre-degradation allocation (equals Allocated for
	// the never-degraded sessions hand-off accepts).
	Original resource.Capacity
	// Violations carries the session's violation count across.
	Violations int
	// Source names the exporting broker's domain.
	Source string
}

// BeginHandoff starts draining session id toward the target domain: the
// outbound intent is journaled and the session's portable state
// returned. The session keeps serving on this broker — and Terminate/
// Expire refuse it — until CompleteHandoff or AbortHandoff closes the
// intent.
func (b *Broker) BeginHandoff(id sla.ID, target string) (*HandoffState, error) {
	if b.closed.Load() {
		return nil, ErrClosed
	}
	if target == "" || target == b.cfg.Domain {
		return nil, fmt.Errorf("core: hand-off target must be another domain, got %q", target)
	}
	sh := b.shardFor(id)
	if sh == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}

	// Claim the intent slot first: two concurrent BeginHandoffs (or a
	// Begin racing an import) must not both export.
	b.hoMu.Lock()
	if it, open := b.handoffs[id]; open {
		b.hoMu.Unlock()
		return nil, fmt.Errorf("%w: %s is %s to %q", ErrHandoffPending, id, it.dir, it.peer)
	}
	b.handoffs[id] = handoffIntent{dir: "out", peer: target}
	b.journalHandoffsLocked("handoff-begin")
	b.hoMu.Unlock()

	sh.mu.Lock()
	s, ok := sh.sessions[id]
	var st *HandoffState
	var err error
	switch {
	case !ok:
		err = fmt.Errorf("%w: %s", ErrUnknownSession, id)
	case s.doc.State != sla.StateEstablished && s.doc.State != sla.StateActive:
		err = fmt.Errorf("%w: %s is %s, hand-off needs established or active", ErrBadState, id, s.doc.State)
	case s.degraded:
		err = fmt.Errorf("%w: %s is degraded; restore before migrating", ErrBadState, id)
	default:
		st = &HandoffState{
			Doc:        s.doc.Clone(),
			Original:   s.original,
			Violations: s.violations,
			Source:     b.cfg.Domain,
		}
	}
	sh.mu.Unlock()
	if err != nil {
		b.hoMu.Lock()
		delete(b.handoffs, id)
		b.journalHandoffsLocked("handoff-abort")
		b.hoMu.Unlock()
		return nil, err
	}
	b.met.handoffsOut.Inc()
	b.logf("handoff", id, "draining toward %q (allocation %v)", target, st.Doc.Allocated)
	return st, nil
}

// AbortHandoff closes an outbound intent without touching the session:
// the source broker remains the owner. Idempotent against an intent the
// recovery sweep or a completed hand-off already cleared.
func (b *Broker) AbortHandoff(id sla.ID) error {
	b.hoMu.Lock()
	it, open := b.handoffs[id]
	if open && it.dir == "out" {
		delete(b.handoffs, id)
		b.journalHandoffsLocked("handoff-abort")
	}
	b.hoMu.Unlock()
	if !open {
		return nil
	}
	if it.dir != "out" {
		return fmt.Errorf("%w: %s has an inbound intent from %q", ErrNotHandoff, id, it.peer)
	}
	b.logf("handoff", id, "aborted; this broker remains owner")
	return nil
}

// CompleteHandoff finishes an outbound hand-off after the target broker
// committed the session: the source copy is torn down (reservation
// canceled, capacity released, scenario-2 applied to the freed room) and
// the intent cleared. A source copy that already went terminal (the
// client terminated mid-migration, or a recovery replayed the teardown)
// just clears the intent. The intent is removed only AFTER the teardown
// journals, so a crash inside this call still recovers to one owner: the
// out-intent survives and the front's reconcile retries the completion.
func (b *Broker) CompleteHandoff(id sla.ID) error {
	b.hoMu.Lock()
	it, open := b.handoffs[id]
	b.hoMu.Unlock()
	if !open || it.dir != "out" {
		return fmt.Errorf("%w: %s", ErrNotHandoff, id)
	}

	sh := b.shardFor(id)
	if sh == nil {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	var job gram.JobID
	terminal := false
	if ok {
		terminal = s.doc.State.Terminal()
		job = s.job
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}

	if !terminal {
		if job != "" && b.cfg.GRAM != nil {
			// The job dies with the source copy; the target re-invokes.
			if j, err := b.cfg.GRAM.Job(job); err == nil && !j.State.Terminal() {
				_ = b.cfg.GRAM.Cancel(job)
			}
		}
		if err := b.teardown(id, sla.StateTerminated,
			fmt.Sprintf("migrated to %q", it.peer)); err != nil && !errors.Is(err, ErrBadState) {
			return err
		}
	}

	b.hoMu.Lock()
	delete(b.handoffs, id)
	b.journalHandoffsLocked("handoff-complete")
	b.hoMu.Unlock()
	b.met.handoffsDone.Inc()
	b.logf("handoff", id, "completed; %q is now the owner", it.peer)
	b.afterRelease()
	return nil
}

// importTestHook, when set, runs after the inbound intent is journaled
// but before the target admits the session — the window the
// crash-mid-import regression test kills the broker in.
var importTestHook func(*Broker)

// ImportSession admits a migrated session under its original SLA ID: the
// inbound intent is journaled first, the session's current allocation is
// admitted all-or-nothing (falling back across shards), a GARA
// reservation is created idempotently under the ID, and the session is
// installed with this broker as provider. Re-importing an ID this broker
// already hosts live is a no-op (a retried import after a lost reply).
// The client is not charged again.
func (b *Broker) ImportSession(st *HandoffState) error {
	if b.closed.Load() {
		return ErrClosed
	}
	if b.recovering.Load() {
		return ErrPeerUnavailable
	}
	if st == nil || st.Doc == nil {
		return errors.New("core: import needs a session document")
	}
	doc := st.Doc
	id := doc.ID
	if doc.State != sla.StateEstablished && doc.State != sla.StateActive {
		return fmt.Errorf("%w: import of %s in state %s", ErrBadState, id, doc.State)
	}
	if prev := b.shardFor(id); prev != nil {
		prev.mu.Lock()
		s, ok := prev.sessions[id]
		live := ok && !s.doc.State.Terminal()
		prev.mu.Unlock()
		if live {
			return nil // idempotent re-import
		}
		return fmt.Errorf("%w: %s already ended on this broker", ErrBadState, id)
	}

	b.hoMu.Lock()
	if it, open := b.handoffs[id]; open && !(it.dir == "in" && it.peer == st.Source) {
		b.hoMu.Unlock()
		return fmt.Errorf("%w: %s is %s to %q", ErrHandoffPending, id, it.dir, it.peer)
	}
	b.handoffs[id] = handoffIntent{dir: "in", peer: st.Source}
	b.journalHandoffsLocked("handoff-import")
	b.hoMu.Unlock()

	if importTestHook != nil {
		importTestHook(b)
	}

	abort := func() {
		b.hoMu.Lock()
		delete(b.handoffs, id)
		b.journalHandoffsLocked("handoff-import-abort")
		b.hoMu.Unlock()
	}

	// Admission is all-or-nothing at the session's current allocation:
	// migration rebalances load, it never degrades the migrated SLA.
	alloc := doc.Allocated
	var sh *shard
	var lastErr error
	for _, cand := range b.placementOrder(0, alloc) {
		if _, err := cand.alloc.AllocateGuaranteed(string(id), alloc, alloc); err == nil {
			sh = cand
			break
		} else {
			lastErr = err
		}
	}
	if sh == nil {
		abort()
		return fmt.Errorf("core: import %s: %w", id, lastErr)
	}

	spec := reservationRSL(doc.Spec, alloc)
	handle, err := b.pol.callCreate("gara.create", string(id), func() (gara.Handle, error) {
		return b.cfg.GARA.Create(spec, doc.Start, doc.End, string(id))
	})
	if err != nil {
		_ = sh.alloc.ReleaseGuaranteed(string(id))
		if h, ok := b.cfg.GARA.FindByTag(string(id)); ok {
			b.parkCancel(id, h)
		}
		b.journalShardAux("rollback", sh)
		abort()
		return fmt.Errorf("core: import reservation %s: %w", id, err)
	}

	imported := doc.Clone()
	imported.Provider = b.cfg.Domain
	sess := &session{
		doc:        imported,
		handle:     handle,
		original:   st.Original,
		violations: st.Violations,
	}
	if sess.original.IsZero() {
		sess.original = alloc
	}

	b.routeMu.Lock()
	b.route[id] = sh
	b.routeMu.Unlock()
	sh.mu.Lock()
	if b.closed.Load() {
		sh.mu.Unlock()
		b.routeMu.Lock()
		delete(b.route, id)
		b.routeMu.Unlock()
		_ = sh.alloc.ReleaseGuaranteed(string(id))
		_ = b.cfg.GARA.Cancel(handle)
		b.journalShardAux("rollback", sh)
		abort()
		return ErrClosed
	}
	sh.sessions[id] = sess
	b.logLocked("handoff", id, "imported from %q at %v (no re-charge)", st.Source, alloc)
	sh.mu.Unlock()
	b.met.handoffsIn.Inc()
	b.persist(id)

	b.hoMu.Lock()
	delete(b.handoffs, id)
	b.journalHandoffsLocked("handoff-import-done")
	b.hoMu.Unlock()
	b.debugCheck("import")
	return nil
}

// HandoffsOut returns the open outbound intents (session → target
// domain), the table the cluster front's post-recovery reconcile walks.
func (b *Broker) HandoffsOut() map[sla.ID]string {
	out := make(map[sla.ID]string)
	b.hoMu.Lock()
	for id, it := range b.handoffs {
		if it.dir == "out" {
			out[id] = it.peer
		}
	}
	b.hoMu.Unlock()
	return out
}

// handoffBlocked reports whether id has an open outbound intent;
// Terminate and Expire refuse such sessions so a teardown cannot race
// the migration window (CompleteHandoff performs the teardown itself).
func (b *Broker) handoffBlocked(id sla.ID) bool {
	b.hoMu.Lock()
	it, open := b.handoffs[id]
	b.hoMu.Unlock()
	return open && it.dir == "out"
}

// journalHandoffsLocked journals the full intent table (caller holds
// b.hoMu) — the same full-image pattern as the parked-cancel table.
func (b *Broker) journalHandoffsLocked(op string) {
	if b.durable == nil {
		return
	}
	m := make(map[string]string, len(b.handoffs))
	for id, it := range b.handoffs {
		m[string(id)] = it.encode()
	}
	b.walAppend(wal.Record{At: b.clock.Now(), Op: op, Handoffs: m, HasHandoffs: true})
}

// resolveInboundHandoffs is the recovery half of the import protocol: an
// in-intent whose session never landed means the broker died mid-import
// — any reservation already committed under the ID is canceled (it
// carries the SOURCE domain's tag prefix, so the regular orphan sweep
// would never claim it) and the intent dropped. An in-intent with a live
// session means the import committed; the intent is simply cleared.
// Outbound intents are left for the cluster front's reconcile, which
// alone can see whether the target committed. Returns how many inbound
// intents were resolved.
func (b *Broker) resolveInboundHandoffs() int {
	b.hoMu.Lock()
	var inbound []sla.ID
	for id, it := range b.handoffs {
		if it.dir == "in" {
			inbound = append(inbound, id)
		}
	}
	b.hoMu.Unlock()
	sort.Slice(inbound, func(i, j int) bool { return inbound[i] < inbound[j] })

	resolved := 0
	for _, id := range inbound {
		live := false
		if sh := b.shardFor(id); sh != nil {
			sh.mu.Lock()
			if s, ok := sh.sessions[id]; ok && !s.doc.State.Terminal() {
				live = true
			}
			sh.mu.Unlock()
		}
		if !live {
			if h, ok := b.cfg.GARA.FindByTag(string(id)); ok {
				hh := h
				err := b.pol.call("gara.cancel", func() error { return b.cfg.GARA.Cancel(hh) })
				switch {
				case err == nil || errors.Is(err, gara.ErrCanceled) || errors.Is(err, gara.ErrUnknownHandle):
					b.logf("recover", id, "reclaimed half-imported reservation %s", h)
				case errors.Is(err, ErrRMUnavailable):
					b.parkCancel(id, h)
				default:
					b.logf("recover", id, "half-imported reservation %s cancel failed: %v", h, err)
				}
			}
		}
		b.hoMu.Lock()
		delete(b.handoffs, id)
		b.journalHandoffsLocked("handoff-recover")
		b.hoMu.Unlock()
		resolved++
	}
	return resolved
}
