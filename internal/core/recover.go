package core

// Recovery: rebuild a broker from its WAL directory and reconcile the
// result against the resource managers.
//
// Replay determinism contract. Records carry absolute post-state and
// replay is a pure last-write-wins fold over (snapshot, suffix), so
// recovery is deterministic given the directory contents — no clocks
// are read during the fold (timestamps in records are data, not
// inputs), and the single wall-clock-dependent step afterwards
// (re-arming confirm timers) runs on the injected clockx clock, which
// the simulation harnesses drive manually.
//
// Reconcile rules (the RM sweep that makes recovered capacity match
// reality):
//
//   - adopt: a live session whose recorded handle the GARA no longer
//     recognizes (or that never had one journaled) adopts the
//     reservation FindByTag returns for its SLA ID — the reservation
//     committed but the broker died before journaling the handle.
//   - refund: a non-canceled GARA reservation tagged with this domain's
//     SLA prefix that no live (non-terminal) session owns is cancelled —
//     the broker died between committing the reservation and journaling
//     the session, or after terminating the session but before the
//     cancel. Cancels that fail against an unavailable RM are parked,
//     exactly like a live teardown.
//   - parked sweep: the recovered parked-cancel table is swept once,
//     while the public ReconcileReservations is still gated by
//     b.recovering (see policy.go).

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"gqosm/internal/gara"
	"gqosm/internal/gram"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
	"gqosm/internal/wal"
)

// RecoverStats reports what a Recover did.
type RecoverStats struct {
	// SnapshotSeq is the loaded snapshot's BaseSeq (0 = no snapshot).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// ReplayedRecords is how many WAL records were folded over the
	// snapshot.
	ReplayedRecords int `json:"replayed_records"`
	// CorruptTail is true when replay stopped at a corrupt record (the
	// prefix before it recovered normally).
	CorruptTail bool `json:"corrupt_tail"`
	// Sessions is how many sessions were rebuilt.
	Sessions int `json:"sessions"`
	// Adopted counts committed-but-unlogged reservations re-attached to
	// their sessions by SLA tag.
	Adopted int `json:"adopted"`
	// Refunded counts orphaned reservations cancelled (or parked for
	// cancel) by the reconcile sweep.
	Refunded int `json:"refunded"`
	// ParkedCleared counts parked cancels cleared by the recovery sweep.
	ParkedCleared int `json:"parked_cleared"`
	// HandoffsResolved counts inbound hand-off intents resolved by the
	// mid-import sweep (see handoff.go); outbound intents are left for
	// the cluster front's reconcile.
	HandoffsResolved int `json:"handoffs_resolved"`
}

// recoverTestHook, when set, runs after the broker's state is installed
// but before the RM reconciliation sweep — the window the monitor-race
// regression test needs to fire a tick into.
var recoverTestHook func(*Broker)

// Recover rebuilds a broker from cfg.Durability.Dir: loads the latest
// valid snapshot, replays the WAL suffix, rebuilds shard allocators and
// session state, reconciles reservations against the RMs, writes a
// fresh recovery snapshot and resumes journaling. The config must
// describe the same broker shape (plan, shard count, domain) that wrote
// the log.
func Recover(cfg Config) (*Broker, *RecoverStats, error) {
	if cfg.Durability.Dir == "" {
		return nil, nil, errors.New("core: Recover requires Config.Durability.Dir")
	}
	log, load, err := wal.Open(wal.Options{
		Dir:           cfg.Durability.Dir,
		SnapshotEvery: cfg.Durability.SnapshotEvery,
		Faults:        cfg.Faults,
	})
	if err != nil {
		return nil, nil, err
	}
	b, err := newBroker(cfg)
	if err != nil {
		log.Seal()
		return nil, nil, err
	}
	b.recovering.Store(true)
	stats := &RecoverStats{ReplayedRecords: len(load.Records), CorruptTail: load.Corrupt != nil}
	if load.Snapshot != nil {
		stats.SnapshotSeq = load.Snapshot.BaseSeq
	}

	st, err := foldState(load)
	if err != nil {
		log.Seal()
		return nil, nil, err
	}
	if err := b.installState(st); err != nil {
		log.Seal()
		return nil, nil, err
	}
	stats.Sessions = st.sessionCount()

	// Journaling resumes before reconciliation so the sweep's own
	// mutations (parked-cancel changes, ledger entries) are durable.
	b.attachDurability(log)
	if load.Corrupt != nil {
		b.logf("wal", "", "replay stopped at corrupt record after seq %d: %v", log.LastSeq(), load.Corrupt)
	}

	if recoverTestHook != nil {
		recoverTestHook(b)
	}

	stats.Adopted, stats.Refunded = b.reconcileAgainstRMs()
	stats.ParkedCleared = b.sweepParked()
	stats.HandoffsResolved = b.resolveInboundHandoffs()
	b.rearmConfirmTimers()

	// Land a fresh snapshot of the reconciled state so the next recovery
	// starts here instead of re-replaying the whole suffix.
	if err := b.snapshotNow(); err != nil {
		b.logf("wal", "", "recovery snapshot failed: %v", err)
	}
	b.recovering.Store(false)
	b.logf("recover", "", "recovered %d session(s) from %s (replayed %d, adopted %d, refunded %d)",
		stats.Sessions, cfg.Durability.Dir, stats.ReplayedRecords, stats.Adopted, stats.Refunded)
	return b, stats, nil
}

// recoveredState is the folded (snapshot ⊕ suffix) image.
type recoveredState struct {
	sessions map[string]*wal.SessionRecord // id → latest absolute state
	aux      map[int]*wal.ShardAux         // shard → latest aux image
	beRoute  map[string]int
	pending  map[string]string
	handoffs map[string]string
	ledger   wal.LedgerState
	nextID   int64
}

func (st *recoveredState) sessionCount() int { return len(st.sessions) }

// foldState folds the load result into one absolute image: snapshot
// fields first, then every suffix record last-write-wins. Ledger
// records are the delta exception — an entry applies only when its
// sequence is past the snapshot's LedgerSeq fence, which is what makes
// replay idempotent for billing (the double-billing bugfix).
func foldState(load *wal.LoadResult) (*recoveredState, error) {
	st := &recoveredState{
		sessions: make(map[string]*wal.SessionRecord),
		aux:      make(map[int]*wal.ShardAux),
		beRoute:  make(map[string]int),
		pending:  make(map[string]string),
		handoffs: make(map[string]string),
		ledger:   wal.LedgerState{Totals: make(map[int]float64)},
	}
	var ledgerFence uint64
	if s := load.Snapshot; s != nil {
		ledgerFence = s.LedgerSeq
		st.nextID = s.NextID
		for i := range s.Shards {
			sh := &s.Shards[i]
			aux := sh.Aux
			st.aux[sh.Index] = &aux
			for j := range sh.Sessions {
				rec := sh.Sessions[j]
				if rec.Doc == nil {
					return nil, fmt.Errorf("%w: snapshot session without document", wal.ErrBadRecord)
				}
				st.sessions[string(rec.Doc.ID)] = &rec
			}
		}
		for u, idx := range s.BERoute {
			st.beRoute[u] = idx
		}
		for id, h := range s.Pending {
			st.pending[id] = h
		}
		for id, it := range s.Handoffs {
			st.handoffs[id] = it
		}
		st.ledger = s.Ledger
		if st.ledger.Totals == nil {
			st.ledger.Totals = make(map[int]float64)
		}
	}
	for i := range load.Records {
		r := &load.Records[i]
		if r.Session != nil {
			if r.Session.Doc == nil {
				return nil, fmt.Errorf("%w: session record %d without document", wal.ErrBadRecord, r.Seq)
			}
			st.sessions[string(r.Session.Doc.ID)] = r.Session
		}
		if r.Aux != nil {
			aux := *r.Aux
			st.aux[aux.Shard] = &aux
		}
		if r.HasBERoute {
			st.beRoute = make(map[string]int, len(r.BERoute))
			for u, idx := range r.BERoute {
				st.beRoute[u] = idx
			}
		}
		if r.HasPending {
			st.pending = make(map[string]string, len(r.Pending))
			for id, h := range r.Pending {
				st.pending[id] = h
			}
		}
		if r.HasHandoffs {
			st.handoffs = make(map[string]string, len(r.Handoffs))
			for id, it := range r.Handoffs {
				st.handoffs[id] = it
			}
		}
		for _, id := range r.Prune {
			delete(st.sessions, id)
		}
		if r.Ledger != nil && r.Seq > ledgerFence {
			e := *r.Ledger
			switch pricing.EntryKind(e.Kind) {
			case pricing.EntryCharge, pricing.EntryPromotion:
				st.ledger.Net += e.Amount
			case pricing.EntryPenalty, pricing.EntryRefund:
				st.ledger.Net -= e.Amount
			}
			st.ledger.Totals[e.Kind] += e.Amount
			st.ledger.Entries = append(st.ledger.Entries, e)
		}
		if r.NextID > st.nextID {
			st.nextID = r.NextID
		}
	}
	// Honor the ledger's retention bound exactly as Record would have.
	if st.ledger.Retain > 0 && len(st.ledger.Entries) > st.ledger.Retain {
		drop := len(st.ledger.Entries) - st.ledger.Retain
		st.ledger.Evicted += int64(drop)
		st.ledger.Entries = append([]wal.LedgerEntry(nil), st.ledger.Entries[drop:]...)
	}
	return st, nil
}

// installState loads the folded image into the freshly built broker:
// sessions, routes, repository documents, allocators, auxiliary tables
// and the restored ledger.
func (b *Broker) installState(st *recoveredState) error {
	ids := make([]string, 0, len(st.sessions))
	for id := range st.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	type shardMaps struct {
		guaranteed map[string]resource.Capacity
		floors     map[string]resource.Capacity
	}
	grants := make([]shardMaps, len(b.shards))
	for i := range grants {
		grants[i] = shardMaps{
			guaranteed: make(map[string]resource.Capacity),
			floors:     make(map[string]resource.Capacity),
		}
	}

	for _, idStr := range ids {
		rec := st.sessions[idStr]
		if rec.Shard < 0 || rec.Shard >= len(b.shards) {
			return fmt.Errorf("core: recovered session %s names shard %d, broker has %d — shard count must match the writer",
				idStr, rec.Shard, len(b.shards))
		}
		sh := b.shards[rec.Shard]
		id := sla.ID(idStr)
		s := &session{
			doc:        rec.Doc,
			handle:     gara.Handle(rec.Handle),
			job:        gram.JobID(rec.Job),
			original:   rec.Original,
			degraded:   rec.Degraded,
			violations: rec.Violations,
			proposedAt: rec.ProposedAt,
		}
		sh.mu.Lock()
		sh.sessions[id] = s
		sh.mu.Unlock()
		b.routeMu.Lock()
		b.route[id] = sh
		b.routeMu.Unlock()
		// The repository holds every document persist ever wrote — that
		// is every session except still-Proposed ones (proposal is the
		// one step that never persists).
		if rec.Doc.State != sla.StateProposed {
			if err := b.repo.Put(rec.Doc.Clone()); err != nil {
				return fmt.Errorf("core: recover: repo put %s: %w", idStr, err)
			}
		}
		// Non-terminal sessions hold allocator grants; the grant equals
		// the document's allocation (the invariant the oracle enforces
		// live), so the allocator rebuilds from the documents.
		if !rec.Doc.State.Terminal() {
			grants[rec.Shard].guaranteed[idStr] = rec.Doc.Allocated
			grants[rec.Shard].floors[idStr] = rec.Doc.Spec.Floor()
		}
	}

	for i, sh := range b.shards {
		var aux wal.ShardAux
		if a := st.aux[i]; a != nil {
			aux = *a
		}
		be := make([]BEState, 0, len(aux.BestEffort))
		for _, g := range aux.BestEffort {
			be = append(be, BEState{User: g.User, Granted: g.Granted, Seq: g.Seq})
		}
		sh.alloc.Restore(grants[i].guaranteed, grants[i].floors, aux.Offline, be, aux.NextSeq)
	}

	b.beMu.Lock()
	for u, idx := range st.beRoute {
		if idx >= 0 && idx < len(b.shards) {
			b.beRoute[u] = b.shards[idx]
		}
	}
	b.beMu.Unlock()

	b.pcMu.Lock()
	for id, h := range st.pending {
		b.pendingCancels[sla.ID(id)] = gara.Handle(h)
	}
	b.pcMu.Unlock()

	b.hoMu.Lock()
	for id, it := range st.handoffs {
		b.handoffs[sla.ID(id)] = decodeIntent(it)
	}
	b.hoMu.Unlock()

	b.nextID.Store(st.nextID)
	b.ledger = pricing.RestoreLedger(pricingStateIn(st.ledger))
	b.cfg.Ledger = b.ledger
	return nil
}

// pricingStateIn converts a WAL ledger image back to pricing state.
func pricingStateIn(st wal.LedgerState) pricing.State {
	in := pricing.State{
		Entries: make([]pricing.Entry, 0, len(st.Entries)),
		Retain:  st.Retain,
		Evicted: st.Evicted,
		Net:     st.Net,
		Totals:  make(map[pricing.EntryKind]float64, len(st.Totals)),
	}
	for _, e := range st.Entries {
		in.Entries = append(in.Entries, pricing.Entry{
			Kind: pricing.EntryKind(e.Kind), SLA: sla.ID(e.SLA), Amount: e.Amount, At: e.At, Note: e.Note,
		})
	}
	for k, v := range st.Totals {
		in.Totals[pricing.EntryKind(k)] = v
	}
	return in
}

// reconcileAgainstRMs runs the adopt/refund sweep described at the top
// of this file. Deterministic: sessions and reservations are visited in
// sorted order.
func (b *Broker) reconcileAgainstRMs() (adopted, refunded int) {
	// Adopt: live sessions whose recorded handle the GARA does not
	// recognize re-attach by tag.
	type owned struct {
		id sla.ID
		sh *shard
	}
	var live []owned
	liveByID := make(map[sla.ID]gara.Handle)
	for _, sh := range b.shards {
		sh.mu.Lock()
		for id, s := range sh.sessions {
			if !s.doc.State.Terminal() {
				live = append(live, owned{id: id, sh: sh})
				liveByID[id] = s.handle
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	for _, o := range live {
		h := liveByID[o.id]
		known := false
		if h != "" {
			// A canceled reservation is as dead as a missing one: the
			// session needs the live replacement FindByTag knows about.
			if r, err := b.cfg.GARA.Get(h); err == nil && r.Status != gara.StatusCanceled {
				known = true
			}
		}
		if known {
			continue
		}
		if found, ok := b.cfg.GARA.FindByTag(string(o.id)); ok {
			o.sh.mu.Lock()
			if s, exists := o.sh.sessions[o.id]; exists {
				s.handle = found
			}
			o.sh.mu.Unlock()
			liveByID[o.id] = found
			adopted++
			b.logf("recover", o.id, "adopted committed reservation %s by tag", found)
			b.journal("adopt", o.id)
		}
	}

	// Refund: non-canceled reservations tagged with this domain's SLA
	// prefix that no live session owns.
	prefix := strings.ToLower(nonEmpty(b.cfg.Domain, "aqos")) + "-sla-"
	res := b.cfg.GARA.Reservations()
	sort.Slice(res, func(i, j int) bool { return res[i].Handle < res[j].Handle })
	for _, r := range res {
		if r.Status == gara.StatusCanceled || !strings.HasPrefix(r.Tag, prefix) {
			continue
		}
		id := sla.ID(r.Tag)
		if h, ok := liveByID[id]; ok && h == r.Handle {
			continue // owned by a live session
		}
		h := r.Handle
		err := b.pol.call("gara.cancel", func() error { return b.cfg.GARA.Cancel(h) })
		switch {
		case err == nil || errors.Is(err, gara.ErrCanceled) || errors.Is(err, gara.ErrUnknownHandle):
			refunded++
			b.logf("recover", id, "refunded orphaned reservation %s", h)
		case errors.Is(err, ErrRMUnavailable):
			b.parkCancel(id, h)
			refunded++
		default:
			b.logf("recover", id, "orphan cancel %s failed: %v", h, err)
		}
	}
	return adopted, refunded
}

// rearmConfirmTimers re-arms the auto-cancel timer of every recovered
// Proposed session with the remainder of its confirm window (an already
// expired window schedules at zero delay and fires on the next clock
// advance — manual-clock semantics).
func (b *Broker) rearmConfirmTimers() {
	for _, sh := range b.shards {
		sh.mu.Lock()
		for id, s := range sh.sessions {
			if s.doc.State != sla.StateProposed || s.confirm != nil {
				continue
			}
			remaining := s.proposedAt.Add(b.cfg.ConfirmWindow).Sub(b.clock.Now())
			if remaining < 0 {
				remaining = 0
			}
			id := id
			s.confirm = b.clock.AfterFunc(remaining, func() { b.expireOffer(id) })
		}
		sh.mu.Unlock()
	}
}
