package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gqosm/internal/faultx"
	"gqosm/internal/gara"
	"gqosm/internal/obs"
	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

// This file is the broker's RM-facing call policy: every call that
// crosses into a resource manager (GARA create/modify/cancel/bind, the
// RM adaptation hook, federation peers) runs under a RetryPolicy —
// per-attempt timeout, bounded retries with jittered exponential
// backoff — with budgets surfaced as obs counters. A faulted RM then
// degrades gracefully: admission retries and adopts half-committed
// reservations by tag instead of double-committing; teardown parks
// uncancellable reservations for the reconciliation sweep; a hung
// rectify probe times out and the scenario-3 ladder continues.

// ErrRMUnavailable is returned when an RM-facing call exhausts its
// retry budget on transient failures. Admission maps it to an opaque
// rejection; adaptation paths treat it as "the RM could not help" and
// continue down the scenario-3 ladder.
var ErrRMUnavailable = errors.New("core: resource manager unavailable")

// errAttemptTimeout marks one attempt exceeding RetryPolicy.Timeout.
// It is transient: the next attempt may succeed.
var errAttemptTimeout = errors.New("core: rm call attempt timed out")

// RetryPolicy bounds the broker's RM-facing calls. The zero value
// means a single attempt with no timeout and no backoff — exactly the
// direct-call behavior brokers had before this policy existed.
type RetryPolicy struct {
	// Attempts is the total number of tries per call (default 1).
	Attempts int
	// Timeout bounds each attempt; 0 disables the per-attempt deadline.
	// Timed-out attempts keep running in the background (the RM call
	// cannot be interrupted) — their late side effects are what the
	// tag-adoption and reconciliation paths exist for.
	Timeout time.Duration
	// Backoff is the base delay before the second attempt, doubling
	// each retry. 0 retries immediately — REQUIRED under a manual
	// clock, where nothing advances time during the sleep.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay (default 16×Backoff).
	MaxBackoff time.Duration
	// JitterFrac spreads each delay uniformly within ±JitterFrac of
	// itself (0..1, default 0 — deterministic delays).
	JitterFrac float64
	// Seed seeds the jitter PRNG, so delay schedules are reproducible.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	if p.MaxBackoff <= 0 && p.Backoff > 0 {
		p.MaxBackoff = 16 * p.Backoff
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	if p.JitterFrac > 1 {
		p.JitterFrac = 1
	}
	return p
}

// siteMetrics are the per-site budget counters.
type siteMetrics struct {
	retries, timeouts, unavailable *obs.Counter
	seconds                        *obs.Histogram
}

// policyRunner applies the broker's RetryPolicy at named call sites.
// It is also where broker-side fault injection happens: the op runs
// under Config.Faults at the site's name, so an injected failure is
// indistinguishable from a real RM failure to everything above.
type policyRunner struct {
	b *Broker
	p RetryPolicy

	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*siteMetrics

	// Aggregate totals, exposed through Broker.RetryStats for
	// deterministic harness reports.
	retries, timeouts, unavailable atomic.Int64
}

func newPolicyRunner(b *Broker, p RetryPolicy) *policyRunner {
	p = p.withDefaults()
	return &policyRunner{
		b:     b,
		p:     p,
		rng:   rand.New(rand.NewSource(p.Seed)),
		sites: make(map[string]*siteMetrics),
	}
}

func (r *policyRunner) metrics(site string) *siteMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.sites[site]
	if m == nil {
		reg := r.b.obs
		m = &siteMetrics{
			retries: reg.Counter("gqosm_rm_retries_total",
				"RM-facing call retries by site", "site", site),
			timeouts: reg.Counter("gqosm_rm_call_timeouts_total",
				"RM-facing call attempts that hit the per-attempt timeout", "site", site),
			unavailable: reg.Counter("gqosm_rm_unavailable_total",
				"RM-facing calls that exhausted their retry budget", "site", site),
			seconds: reg.Histogram("gqosm_rm_call_seconds",
				"RM-facing call attempt latency", nil, "site", site),
		}
		r.sites[site] = m
	}
	return m
}

// retryable reports whether err is transient: injected faults,
// transport failures, per-attempt timeouts, and recovery-gated peer
// refusals (a broker mid-WAL-replay answers again once recovery lands).
// Business errors (a full allocator, an unknown handle) are definitive
// answers and pass through on the attempt that produced them.
func retryable(err error) bool {
	return errors.Is(err, faultx.ErrInjected) ||
		errors.Is(err, soapx.ErrTransport) ||
		errors.Is(err, errAttemptTimeout) ||
		errors.Is(err, ErrPeerUnavailable)
}

// call runs op at site under the full policy: per-attempt timeout,
// Attempts tries, backoff between them. Returns nil, the first
// non-transient error, or ErrRMUnavailable (wrapped) on budget
// exhaustion.
func (r *policyRunner) call(site string, op func() error) error {
	return r.run(site, r.p.Attempts, op)
}

// callOnce runs op at site with the per-attempt timeout but no
// retries: probe semantics, for calls where a second try has no value
// (e.g. the RM rectify hook — the ladder continues either way).
func (r *policyRunner) callOnce(site string, op func() error) error {
	return r.run(site, 1, op)
}

func (r *policyRunner) run(site string, attempts int, op func() error) error {
	m := r.metrics(site)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			m.retries.Inc()
			r.retries.Add(1)
			if d := r.delay(attempt); d > 0 {
				r.sleep(d)
			}
		}
		start := time.Now()
		err := r.attempt(site, op)
		m.seconds.Observe(time.Since(start).Seconds())
		if err == nil {
			return nil
		}
		if errors.Is(err, faultx.ErrHang) {
			// Synchronous hang-until-deadline: the injector did not
			// really block, so charge the attempt's full deadline to
			// the virtual latency accounting.
			m.timeouts.Inc()
			r.timeouts.Add(1)
			if r.p.Timeout > 0 {
				r.b.cfg.Faults.RecordVirtual(r.p.Timeout)
			}
			lastErr = err
			continue
		}
		if errors.Is(err, errAttemptTimeout) {
			m.timeouts.Inc()
			r.timeouts.Add(1)
			lastErr = err
			continue
		}
		if !retryable(err) {
			return err
		}
		lastErr = err
	}
	m.unavailable.Inc()
	r.unavailable.Add(1)
	return fmt.Errorf("core: %s: %w after %d attempt(s): %v", site, ErrRMUnavailable, attempts, lastErr)
}

// attempt runs op once, under fault injection and the per-attempt
// deadline. A timed-out op keeps running in its goroutine — RM calls
// cannot be interrupted — and its eventual side effect is reconciled
// by tag adoption or the reservation sweep.
func (r *policyRunner) attempt(site string, op func() error) error {
	wrapped := op
	if inj := r.b.cfg.Faults; inj != nil {
		wrapped = func() error { return inj.Do(site, op) }
	}
	if r.p.Timeout <= 0 {
		return wrapped()
	}
	done := make(chan error, 1)
	go func() { done <- wrapped() }()
	timedOut := make(chan struct{})
	// AfterFunc + Stop, never After: a manual clock keeps abandoned
	// After timers pending forever.
	t := r.b.clock.AfterFunc(r.p.Timeout, func() { close(timedOut) })
	select {
	case err := <-done:
		t.Stop()
		return err
	case <-timedOut:
		return fmt.Errorf("%w: %s after %v", errAttemptTimeout, site, r.p.Timeout)
	}
}

// delay computes the backoff before retry number attempt (1-based):
// Backoff doubled per retry, capped at MaxBackoff, spread by
// ±JitterFrac with the seeded PRNG.
func (r *policyRunner) delay(attempt int) time.Duration {
	base := r.p.Backoff
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if r.p.MaxBackoff > 0 && d >= r.p.MaxBackoff {
			d = r.p.MaxBackoff
			break
		}
	}
	if r.p.MaxBackoff > 0 && d > r.p.MaxBackoff {
		d = r.p.MaxBackoff
	}
	if r.p.JitterFrac > 0 {
		r.mu.Lock()
		f := 1 + r.p.JitterFrac*(2*r.rng.Float64()-1)
		r.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// sleep blocks for d of clock time. Under a manual clock this parks
// until someone advances time — which is why deterministic harnesses
// must run with Backoff 0.
func (r *policyRunner) sleep(d time.Duration) {
	ch := make(chan struct{})
	t := r.b.clock.AfterFunc(d, func() { close(ch) })
	defer t.Stop()
	<-ch
}

// callCreate is the idempotent-create variant of call for two-phase
// reservations: tag is the idempotency key (the SLA ID). Before every
// attempt the live reservation table is consulted, so a retry after a
// lost create reply ADOPTS the committed reservation instead of
// committing a second one.
func (r *policyRunner) callCreate(site, tag string, create func() (gara.Handle, error)) (gara.Handle, error) {
	var handle gara.Handle
	err := r.call(site, func() error {
		if h, ok := r.b.cfg.GARA.FindByTag(tag); ok {
			handle = h
			return nil
		}
		h, err := create()
		if err == nil {
			handle = h
		}
		return err
	})
	if err != nil {
		return "", err
	}
	return handle, nil
}

// RetryStats returns the aggregate retry-budget totals across all
// sites: retries performed, attempts timed out, and calls that
// exhausted their budget.
func (b *Broker) RetryStats() (retries, timeouts, unavailable int64) {
	return b.pol.retries.Load(), b.pol.timeouts.Load(), b.pol.unavailable.Load()
}

// parkCancel records a reservation whose cancel exhausted its retry
// budget; ReconcileReservations keeps retrying it.
func (b *Broker) parkCancel(id sla.ID, h gara.Handle) {
	b.pcMu.Lock()
	b.pendingCancels[id] = h
	b.journalPendingLocked("park")
	b.pcMu.Unlock()
	b.logf("reconcile", id, "reservation %s parked for cancel retry", h)
}

// PendingCancels returns how many reservations await a cancel retry.
func (b *Broker) PendingCancels() int {
	b.pcMu.Lock()
	defer b.pcMu.Unlock()
	return len(b.pendingCancels)
}

// ReconcileReservations retries every parked reservation cancel (in
// SLA order, deterministically) and returns how many were cleared.
// The monitor drives it each tick; harnesses call it during drains so
// no reservation outlives its session just because an RM was down at
// teardown time.
//
// While a recovery is in flight the sweep is a no-op: the parked-cancel
// table is still being rebuilt from the WAL, and a monitor that re-arms
// early would race the recovery's own reconciliation sweep — cancelling
// handles the replay is about to re-own (see recover.go).
func (b *Broker) ReconcileReservations() int {
	if b.recovering.Load() {
		return 0
	}
	return b.sweepParked()
}

// sweepParked is the reconcile body, shared by the public method and
// the recovery path (which runs while recovering is still true).
func (b *Broker) sweepParked() int {
	b.pcMu.Lock()
	ids := make([]sla.ID, 0, len(b.pendingCancels))
	for id := range b.pendingCancels {
		ids = append(ids, id)
	}
	handles := make(map[sla.ID]gara.Handle, len(ids))
	for _, id := range ids {
		handles[id] = b.pendingCancels[id]
	}
	b.pcMu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	cleared := 0
	for _, id := range ids {
		h := handles[id]
		err := b.pol.call("gara.cancel", func() error { return b.cfg.GARA.Cancel(h) })
		if err != nil && !errors.Is(err, gara.ErrCanceled) && !errors.Is(err, gara.ErrUnknownHandle) {
			// Still transiently failing: leave it parked for the next
			// sweep.
			continue
		}
		b.pcMu.Lock()
		delete(b.pendingCancels, id)
		b.journalPendingLocked("unpark")
		b.pcMu.Unlock()
		cleared++
		b.logf("reconcile", id, "reservation %s cancel cleared", h)
	}
	if cleared > 0 {
		b.maybeSnapshot()
	}
	return cleared
}
