package core

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/gara"
	"gqosm/internal/nrm"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
	"gqosm/internal/soapx"
)

// domainBroker builds a small single-domain broker for federation tests:
// a registry advertising serviceName, a compute pool of the given size.
func domainBroker(t *testing.T, domain, serviceName string, nodes float64) *Broker {
	t.Helper()
	clock := clockx.NewManual(t0)
	pool := resource.NewPool(domain, resource.Nodes(nodes))
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:       serviceName,
		Provider:   domain,
		Properties: []registry.Property{registry.NumProp("cpu-nodes", nodes)},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := NewBroker(Config{
		Domain: domain,
		Clock:  clock,
		Plan: CapacityPlan{
			Guaranteed: resource.Nodes(nodes * 0.6),
			Adaptive:   resource.Nodes(nodes * 0.2),
			BestEffort: resource.Nodes(nodes * 0.2),
		},
		Registry:      reg,
		GARA:          g,
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func nodeRequest(service string, n float64) Request {
	return Request{
		Service: service,
		Client:  "fed-client",
		Class:   sla.ClassGuaranteed,
		Spec:    sla.NewSpec(sla.Exact(resource.CPU, n)),
		Start:   t0,
		End:     t5,
	}
}

// TestFigure1Architecture wires the Fig. 1 picture: two administrative
// domains, each with its own AQoS + RM, the client's home AQoS forwarding
// to the neighbor when the local domain cannot serve.
func TestFigure1Architecture(t *testing.T) {
	home := domainBroker(t, "domain1", "solver", 20)
	neighbor := domainBroker(t, "domain2", "renderer", 40)

	fed := NewFederation(home)
	fed.AddPeer(neighbor)
	if got := fed.Peers(); len(got) != 1 || got[0] != "domain2" {
		t.Fatalf("Peers = %v", got)
	}
	if fed.Home() != home {
		t.Fatal("Home() mismatch")
	}

	// A request the home domain serves stays home.
	local, err := fed.RequestService(nodeRequest("solver", 4))
	if err != nil {
		t.Fatalf("local request: %v", err)
	}
	if local.Domain != "domain1" || local.Forwarded {
		t.Errorf("local offer = %+v", local)
	}

	// A service only the neighbor advertises is forwarded.
	remote, err := fed.RequestService(nodeRequest("renderer", 4))
	if err != nil {
		t.Fatalf("forwarded request: %v", err)
	}
	if remote.Domain != "domain2" || !remote.Forwarded {
		t.Errorf("remote offer = %+v", remote)
	}
	// The session lives on the neighbor broker.
	if _, err := neighbor.Session(remote.SLA.ID); err != nil {
		t.Errorf("session not on neighbor: %v", err)
	}
	if _, err := home.Session(remote.SLA.ID); err == nil {
		t.Error("session leaked onto home broker")
	}
	if err := neighbor.Accept(remote.SLA.ID); err != nil {
		t.Errorf("accept on neighbor: %v", err)
	}
	// The home activity log records the forwarding.
	found := false
	for _, e := range home.Events() {
		if e.Kind == "federation" {
			found = true
		}
	}
	if !found {
		t.Error("no federation event logged")
	}
}

func TestFederationCapacityOverflow(t *testing.T) {
	// Both domains advertise the same service; home is small, neighbor
	// large. Oversized requests flow to the neighbor.
	home := domainBroker(t, "small", "solver", 10) // C_G = 6
	neighbor := domainBroker(t, "big", "solver", 50)
	fed := NewFederation(home)
	fed.AddPeer(neighbor)

	offer, err := fed.RequestService(nodeRequest("solver", 20))
	if err != nil {
		t.Fatalf("overflow request: %v", err)
	}
	if offer.Domain != "big" || !offer.Forwarded {
		t.Errorf("offer = %+v", offer)
	}
}

func TestFederationAllDecline(t *testing.T) {
	home := domainBroker(t, "d1", "solver", 10)
	neighbor := domainBroker(t, "d2", "solver", 10)
	fed := NewFederation(home)
	fed.AddPeer(neighbor)
	if _, err := fed.RequestService(nodeRequest("solver", 100)); !errors.Is(err, ErrNoDomainCanServe) {
		t.Fatalf("err = %v, want ErrNoDomainCanServe", err)
	}
	// Validation errors are not forwarded.
	bad := nodeRequest("solver", 4)
	bad.End = bad.Start
	if _, err := fed.RequestService(bad); errors.Is(err, ErrNoDomainCanServe) {
		t.Fatalf("validation error was forwarded: %v", err)
	}
}

func TestFederationOverSOAP(t *testing.T) {
	// The neighbor is remote: reachable only through its SOAP endpoint.
	home := domainBroker(t, "local", "solver", 10)
	remote := domainBroker(t, "remote", "renderer", 40)
	mux := soapx.NewMux()
	remote.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	fed := NewFederation(home)
	fed.AddPeer(&PeerClient{Domain: "remote", Client: NewClient(srv.URL)})

	offer, err := fed.RequestService(nodeRequest("renderer", 8))
	if err != nil {
		t.Fatalf("remote federation: %v", err)
	}
	if offer.Domain != "remote" || !offer.Forwarded {
		t.Errorf("offer = %+v", offer)
	}
	if offer.SLA == nil || offer.Price <= 0 {
		t.Errorf("offer payload = %+v", offer)
	}
	// The client concludes the SLA against the remote broker directly.
	if err := remote.Accept(offer.SLA.ID); err != nil {
		t.Errorf("accept on remote: %v", err)
	}
}

func TestFederationNRMCrossDomainCoordination(t *testing.T) {
	// §2.1: "the NRM is also responsible for managing inter-domain
	// communication with NRMs in neighboring domains, in order to
	// coordinate SLAs across domain boundaries." Two NRMs share the
	// topology; a flow reserved by one is visible as link usage to the
	// other.
	topo := nrm.NewTopology()
	if err := topo.AddDomain("d1", "10.1.0.0/16"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddDomain("d2", "10.2.0.0/16"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink("d1", "d2", 100); err != nil {
		t.Fatal(err)
	}
	nrm1 := nrm.NewManager("d1", topo)
	nrm2 := nrm.NewManager("d2", topo)

	if _, err := nrm1.Reserve("10.1.0.5", "10.2.0.7", 80, t0, t5, "sla-x"); err != nil {
		t.Fatal(err)
	}
	// The neighbor NRM sees the commitment and refuses to oversubscribe
	// the shared link.
	if _, err := nrm2.Reserve("10.2.0.7", "10.1.0.5", 50, t0, t5, "sla-y"); !errors.Is(err, nrm.ErrInsufficientBandwidth) {
		t.Fatalf("cross-domain oversubscription err = %v", err)
	}
	if _, err := nrm2.Reserve("10.2.0.7", "10.1.0.5", 20, t0, t5, "sla-y"); err != nil {
		t.Fatalf("fitting cross-domain reservation: %v", err)
	}
}

func TestFederationMount(t *testing.T) {
	home := domainBroker(t, "local", "solver", 10)
	neighbor := domainBroker(t, "remote", "renderer", 40)
	fed := NewFederation(home)
	fed.AddPeer(neighbor)

	mux := soapx.NewMux()
	fed.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	client := NewClient(srv.URL)

	// A forwarded request reports the serving domain on the wire.
	resp, err := client.RequestService(nodeRequest("renderer", 4))
	if err != nil {
		t.Fatalf("federated remote request: %v", err)
	}
	if resp.Domain != "remote" {
		t.Errorf("offer domain = %q, want remote", resp.Domain)
	}
	// A locally served request reports the home domain.
	resp, err = client.RequestService(nodeRequest("solver", 4))
	if err != nil {
		t.Fatalf("federated local request: %v", err)
	}
	if resp.Domain != "local" {
		t.Errorf("offer domain = %q, want local", resp.Domain)
	}
	// Other actions still route to the home broker.
	if _, err := client.Act(sla.ID(resp.SLA.SLAID), "accept", ""); err != nil {
		t.Fatalf("accept through federation mount: %v", err)
	}
}
