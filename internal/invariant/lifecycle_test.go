package invariant_test

import (
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

func propose(t *testing.T, b *core.Broker, client string, start time.Time) sla.ID {
	t.Helper()
	offer, err := b.RequestService(core.Request{
		Service: "simulation",
		Client:  client,
		Class:   sla.ClassGuaranteed,
		Spec:    sla.NewSpec(sla.Exact(resource.CPU, 2)),
		Start:   start,
		End:     start.Add(4 * time.Hour),
	})
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	return offer.SLA.ID
}

func TestCheckLifecycleStaleProposal(t *testing.T) {
	c := newCluster(t)
	opt := invariant.LifecycleCheck{ConfirmWindow: 2 * time.Minute}
	now := c.Clock.Now()
	propose(t, c.Broker, "tenant-a", now)

	// Within the window: clean.
	if err := invariant.CheckLifecycle(c.Broker, now.Add(time.Minute), opt); err != nil {
		t.Fatalf("fresh proposal flagged: %v", err)
	}
	// An oracle reading past the window while the session still sits in
	// Proposed (the confirm timer evidently never fired) is the bug the
	// rule exists for. The clock has not advanced, so the timer is
	// still pending — exactly the broken-timer state, simulated.
	err := invariant.CheckLifecycle(c.Broker, now.Add(3*time.Minute), opt)
	if !hasRule(err, "stale-proposal") {
		t.Fatalf("stale proposal not flagged: %v", err)
	}
	// Grace absorbs the boundary.
	opt.Grace = 5 * time.Minute
	if err := invariant.CheckLifecycle(c.Broker, now.Add(3*time.Minute), opt); err != nil {
		t.Fatalf("grace did not absorb: %v", err)
	}

	// The healthy path: advancing the clock fires the confirm timer,
	// the offer expires, and the rule stays quiet at any reading.
	opt.Grace = 0
	c.Clock.Advance(10 * time.Minute)
	if err := invariant.CheckLifecycle(c.Broker, c.Clock.Now(), opt); err != nil {
		t.Fatalf("expired offer flagged: %v", err)
	}
}

func TestCheckLifecycleOverstaySession(t *testing.T) {
	c := newCluster(t)
	opt := invariant.LifecycleCheck{ConfirmWindow: 2 * time.Minute}
	id := establish(t, c, "tenant-a", 2) // End = now + 4h

	if err := invariant.CheckLifecycle(c.Broker, c.Clock.Now().Add(time.Hour), opt); err != nil {
		t.Fatalf("mid-lease session flagged: %v", err)
	}
	// Past End without an ExpireDue sweep: overstay.
	late := c.Clock.Now().Add(5 * time.Hour)
	err := invariant.CheckLifecycle(c.Broker, late, opt)
	if !hasRule(err, "overstay-session") {
		t.Fatalf("overstaying session not flagged: %v", err)
	}

	// The driver's contract: advance, sweep, then check — clean.
	c.Clock.Advance(5 * time.Hour)
	c.Broker.ExpireDue()
	if err := invariant.CheckLifecycle(c.Broker, c.Clock.Now(), opt); err != nil {
		t.Fatalf("after ExpireDue: %v", err)
	}
	if doc, err2 := c.Broker.Session(id); err2 != nil || !doc.State.Terminal() {
		t.Fatalf("session not expired: %v, %v", doc, err2)
	}
}
