package invariant

// Cluster-level invariants: the single-broker rules lifted over a set of
// broker instances, plus the two conditions only a cluster can break —
// one owner per SLA and conservation of the summed capacity. They
// generalize the cross-shard rules (double-grant, domain-overcommit)
// one level up: what a shard is to a broker, a broker is to the cluster.
//
// Like rules 3/4 of the single-broker oracle, the cross-broker rules
// compare independently locked structures and only hold at quiesce
// points — call CheckCluster from serial drivers between steps, or from
// concurrent harnesses after a drain. A hand-off in flight (intent
// journaled, target committed, source not yet torn down) is NOT a
// quiesce point: both brokers legitimately hold the session until
// CompleteHandoff runs.

import (
	"fmt"
	"sort"

	"gqosm/internal/core"
	"gqosm/internal/resource"
)

// CheckCluster runs the per-broker invariants on every broker (details
// prefixed with the owning domain) plus the cluster-level rules:
//
//   - cluster-double-owner: a non-terminal session ID lives on at most
//     one broker — the hand-off protocol's "exactly one owner" promise;
//   - cluster-double-grant: a guaranteed allocator grant for any ID
//     exists on at most one broker (a torn hand-off that left capacity
//     booked twice is caught even before the session tables disagree);
//   - cluster-overcommit: the summed guaranteed demand across all
//     brokers fits the summed deliverable capacity — conservation for
//     the whole cluster no matter how placement spread the admissions.
func CheckCluster(brokers ...*core.Broker) error {
	return wrap(clusterViolations(brokers))
}

func clusterViolations(brokers []*core.Broker) []Violation {
	var vs []Violation

	for _, b := range brokers {
		for _, v := range brokerViolations(b) {
			v.Detail = fmt.Sprintf("broker %q: %s", b.Domain(), v.Detail)
			vs = append(vs, v)
		}
	}

	// One owner per live SLA ID across the whole cluster.
	owners := make(map[string][]string)
	for _, b := range brokers {
		for _, doc := range b.Sessions(nil) {
			if !doc.State.Terminal() {
				owners[string(doc.ID)] = append(owners[string(doc.ID)], b.Domain())
			}
		}
	}
	var dup []string
	for id, ds := range owners {
		if len(ds) > 1 {
			sort.Strings(ds)
			dup = append(dup, fmt.Sprintf("%s on %v", id, ds))
		}
	}
	sort.Strings(dup)
	for _, d := range dup {
		vs = append(vs, Violation{
			Rule:   "cluster-double-owner",
			Detail: "live session owned by multiple brokers: " + d,
		})
	}

	// One guaranteed grant per ID across every broker's allocators.
	granted := make(map[string][]string)
	for _, b := range brokers {
		seen := make(map[string]bool) // per-broker dedup: cross-shard dups are the broker-level rule's job
		for _, alloc := range b.Allocators() {
			for _, user := range alloc.GuaranteedUsers() {
				if !seen[user] {
					seen[user] = true
					granted[user] = append(granted[user], b.Domain())
				}
			}
		}
	}
	var dg []string
	for id, ds := range granted {
		if len(ds) > 1 {
			sort.Strings(ds)
			dg = append(dg, fmt.Sprintf("%s on %v", id, ds))
		}
	}
	sort.Strings(dg)
	for _, d := range dg {
		vs = append(vs, Violation{
			Rule:   "cluster-double-grant",
			Detail: "guaranteed grant booked on multiple brokers: " + d,
		})
	}

	// Conservation over the summed cluster capacity.
	var clusterTotal, clusterMax resource.Capacity
	for _, b := range brokers {
		for _, alloc := range b.Allocators() {
			plan := alloc.Plan()
			var gTotal resource.Capacity
			for _, u := range alloc.Snapshot() {
				gTotal = gTotal.Add(u.Guaranteed)
			}
			gMax := plan.Guaranteed.Sub(alloc.Offline()).ClampMin(resource.Capacity{}).Add(plan.Adaptive)
			clusterTotal = clusterTotal.Add(gTotal)
			clusterMax = clusterMax.Add(gMax)
		}
	}
	if !clusterTotal.FitsIn(clusterMax) {
		vs = append(vs, Violation{
			Rule:   "cluster-overcommit",
			Detail: fmt.Sprintf("cluster guaranteed %v exceeds deliverable %v", clusterTotal, clusterMax),
		})
	}
	return vs
}
