package invariant

import (
	"fmt"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/sla"
)

// LifecycleCheck configures CheckLifecycle.
type LifecycleCheck struct {
	// ConfirmWindow is the broker's offer confirm window. A proposed
	// session older than ConfirmWindow+Grace whose auto-cancel timer
	// evidently never fired is a stale proposal.
	ConfirmWindow time.Duration
	// Grace is slack added to both rules before they fire, absorbing
	// the gap between a deadline passing and the driver's next
	// ExpireDue sweep. Defaults to 0 — call CheckLifecycle only right
	// after an ExpireDue at the same clock reading.
	Grace time.Duration
}

// CheckLifecycle runs the expiry-boundary rules the confirm-window and
// session-end timers promise, at a quiesce point *after* ExpireDue has
// run at the same clock reading:
//
//   - stale-proposal: no session sits in StateProposed past its confirm
//     window (plus grace) — the auto-cancel timer armed at proposal
//     time must have expired the offer;
//   - overstay-session: no live session persists past its negotiated
//     End (plus grace) — the lease-churn scenario hammers exactly this
//     boundary, where an accept races the expiry sweep.
//
// These rules are meaningful only for drivers that sweep expiries at
// every quiesce (the scenario/soak harness); drivers that let offers
// ride (chaos, fuzz) must not install them.
func CheckLifecycle(b *core.Broker, now time.Time, opt LifecycleCheck) error {
	return wrap(lifecycleViolations(b, now, opt))
}

func lifecycleViolations(b *core.Broker, now time.Time, opt LifecycleCheck) []Violation {
	var vs []Violation
	for _, s := range b.SessionInfos() {
		if s.State.Terminal() {
			continue
		}
		if s.State == sla.StateProposed {
			if s.ProposedAt.IsZero() || opt.ConfirmWindow <= 0 {
				continue
			}
			deadline := s.ProposedAt.Add(opt.ConfirmWindow + opt.Grace)
			if now.After(deadline) {
				vs = append(vs, Violation{
					Rule: "stale-proposal",
					Detail: fmt.Sprintf("session %s proposed at %s still unexpired at %s (window %s)",
						s.ID, s.ProposedAt.Format("15:04:05"), now.Format("15:04:05"), opt.ConfirmWindow),
				})
			}
			continue
		}
		doc, err := b.Session(s.ID)
		if err != nil {
			continue // pruned between snapshot and lookup
		}
		if !doc.End.IsZero() && now.After(doc.End.Add(opt.Grace)) {
			vs = append(vs, Violation{
				Rule: "overstay-session",
				Detail: fmt.Sprintf("session %s (%s) persists past its end %s at %s",
					s.ID, doc.State, doc.End.Format("15:04:05"), now.Format("15:04:05")),
			})
		}
	}
	return vs
}
