package invariant_test

import (
	"strings"
	"testing"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/invariant"
	"gqosm/internal/resource"
	"gqosm/internal/sim"
	"gqosm/internal/sla"
)

func newCluster(t *testing.T) *sim.Cluster {
	t.Helper()
	c, err := sim.NewCluster(sim.ClusterConfig{Plan: core.CapacityPlan{
		Guaranteed: resource.Capacity{CPU: 15, MemoryMB: 6144, DiskGB: 120},
		Adaptive:   resource.Capacity{CPU: 6, MemoryMB: 2048, DiskGB: 40},
		BestEffort: resource.Capacity{CPU: 5, MemoryMB: 2048, DiskGB: 40},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func establish(t *testing.T, c *sim.Cluster, client string, cpu float64) sla.ID {
	t.Helper()
	now := c.Clock.Now()
	offer, err := c.Broker.RequestService(core.Request{
		Service: "simulation",
		Client:  client,
		Class:   sla.ClassGuaranteed,
		Spec:    sla.NewSpec(sla.Exact(resource.CPU, cpu)),
		Start:   now,
		End:     now.Add(4 * time.Hour),
	})
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if err := c.Broker.Accept(offer.SLA.ID); err != nil {
		t.Fatalf("accept: %v", err)
	}
	return offer.SLA.ID
}

func rules(err error) []string {
	t, ok := err.(*invariant.Error)
	if !ok {
		return nil
	}
	out := make([]string, len(t.Violations))
	for i, v := range t.Violations {
		out[i] = v.Rule
	}
	return out
}

func hasRule(err error, rule string) bool {
	for _, r := range rules(err) {
		if r == rule {
			return true
		}
	}
	return false
}

// TestCheckHealthyLifecycle walks a full Figure-3 lifecycle and expects a
// clean bill of health at every step.
func TestCheckHealthyLifecycle(t *testing.T) {
	c := newCluster(t)
	check := func(step string) {
		t.Helper()
		if err := invariant.CheckAll(c.Broker, c.Clock.Now(), c.Pool); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
	}
	check("fresh")
	id := establish(t, c, "alice", 8)
	check("established")
	if _, err := c.Broker.Invoke(id); err != nil {
		t.Fatal(err)
	}
	check("active")
	c.Broker.NotifyFailure(resource.Nodes(4))
	check("failure")
	c.Broker.NotifyFailure(resource.Capacity{})
	check("recovery")
	if err := c.Broker.Terminate(id, "done"); err != nil {
		t.Fatal(err)
	}
	check("terminated")
}

// TestCheckDetectsOrphanGrant plants a guaranteed grant with no backing
// session — the "lost capacity" shape a concurrency bug would leave.
func TestCheckDetectsOrphanGrant(t *testing.T) {
	c := newCluster(t)
	if _, err := c.Broker.Allocator().AllocateGuaranteed("ghost",
		resource.Nodes(2), resource.Nodes(2)); err != nil {
		t.Fatal(err)
	}
	err := invariant.Check(c.Broker)
	if !hasRule(err, "orphan-grant") {
		t.Fatalf("want orphan-grant, got %v", err)
	}
	if !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("error does not name the orphan: %v", err)
	}
}

// TestCheckDetectsTerminalGrant re-grants capacity to a terminated session
// behind the broker's back — the double-spend shape teardown races create.
func TestCheckDetectsTerminalGrant(t *testing.T) {
	c := newCluster(t)
	id := establish(t, c, "bob", 4)
	if err := c.Broker.Terminate(id, "done"); err != nil {
		t.Fatal(err)
	}
	if err := invariant.Check(c.Broker); err != nil {
		t.Fatalf("clean teardown flagged: %v", err)
	}
	if _, err := c.Broker.Allocator().AllocateGuaranteed(string(id),
		resource.Nodes(4), resource.Nodes(4)); err != nil {
		t.Fatal(err)
	}
	if err := invariant.Check(c.Broker); !hasRule(err, "terminal-grant") {
		t.Fatalf("want terminal-grant, got %v", err)
	}
}

// TestCheckDetectsDocAllocatorSkew diverges the allocator's book from the
// SLA document.
func TestCheckDetectsDocAllocatorSkew(t *testing.T) {
	c := newCluster(t)
	now := c.Clock.Now()
	offer, err := c.Broker.RequestService(core.Request{
		Service: "simulation",
		Client:  "carol",
		Class:   sla.ClassControlledLoad,
		Spec:    sla.NewSpec(sla.Range(resource.CPU, 2, 6)),
		Start:   now,
		End:     now.Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if _, err := c.Broker.Allocator().AllocateGuaranteed(string(id),
		resource.Nodes(3), resource.Nodes(2)); err != nil {
		t.Fatal(err)
	}
	if err := invariant.Check(c.Broker); !hasRule(err, "doc-allocator-skew") {
		t.Fatalf("want doc-allocator-skew, got %v", err)
	}
}

// TestCheckPool covers the mechanism rule: the pool's own admission
// control keeps it clean through the public API.
func TestCheckPool(t *testing.T) {
	c := newCluster(t)
	now := c.Clock.Now()
	if err := invariant.CheckPool(c.Pool, now); err != nil {
		t.Fatalf("fresh pool flagged: %v", err)
	}
	if _, err := c.Pool.Reserve(resource.Nodes(10), now, now.Add(time.Hour), "t"); err != nil {
		t.Fatal(err)
	}
	if err := invariant.CheckPool(c.Pool, now); err != nil {
		t.Fatalf("valid reservation flagged: %v", err)
	}
}

// TestDebugHook wires invariant.Check into the broker's debug hook and
// confirms violations surface as "invariant" events.
func TestDebugHook(t *testing.T) {
	c := newCluster(t)
	c.Broker.SetDebugHook(invariant.Check)
	id := establish(t, c, "dave", 6)
	if _, err := c.Broker.Invoke(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Broker.Terminate(id, "done"); err != nil {
		t.Fatal(err)
	}
	if ev := c.Broker.DebugViolations(); len(ev) != 0 {
		t.Fatalf("healthy lifecycle logged violations: %v", ev)
	}
	// Corrupt the allocator; the next operation's hook must notice.
	if _, err := c.Broker.Allocator().AllocateGuaranteed("ghost",
		resource.Nodes(1), resource.Nodes(1)); err != nil {
		t.Fatal(err)
	}
	_ = c.Broker.BestEffortRequest("be-1", resource.Nodes(1))
	ev := c.Broker.DebugViolations()
	if len(ev) == 0 {
		t.Fatal("corruption not reported by debug hook")
	}
	if !strings.Contains(ev[0].Msg, "orphan-grant") {
		t.Fatalf("unexpected violation event: %v", ev[0])
	}
}
