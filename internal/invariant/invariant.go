// Package invariant centralizes the broker's global correctness
// conditions — the oracle shared by the deterministic fuzz driver, the
// concurrent stress harness, the parallel simulator and the broker's
// optional debug hook. The rules are the ones the Algorithm-1 partition
// and the Fig. 3 lifecycle promise jointly:
//
//  1. the compute pool never holds more than its capacity (mechanism);
//  2. no shard's allocator over-commits any partition pool, each shard's
//     guaranteed demand stays within what that shard can deliver, and the
//     domain-wide sum conserves total capacity (policy);
//  3. every live session's allocation satisfies its SLA and matches the
//     allocator's book;
//  4. terminal sessions hold no allocator grant, and every guaranteed
//     grant belongs to a live session (no lost or double-spent capacity);
//  5. the ledger's net revenue is finite.
//
// The cross-component rules (3 and 4) compare two independently locked
// structures, so they only hold when no operation is in flight: call
// Check from single-threaded drivers after each step, or from concurrent
// harnesses at quiesce points only.
package invariant

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gqosm/internal/core"
	"gqosm/internal/gara"
	"gqosm/internal/pricing"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// Violation is one broken invariant.
type Violation struct {
	// Rule names the invariant ("pool-oversubscribed",
	// "partition-overfull", "guaranteed-overcommit",
	// "domain-overcommit", "terminal-grant", "live-no-grant",
	// "double-grant", "sla-unsatisfied", "doc-allocator-skew",
	// "orphan-grant", "proposed-no-reservation", "ledger-nan"; from
	// CheckIntake: "intake-undrained"; and from CheckReservations:
	// "duplicate-reservation-tag", "leaked-reservation",
	// "missing-refund").
	Rule string
	// Detail describes the observed state.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Error aggregates every violation a check pass found.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.String()
	}
	return fmt.Sprintf("invariant: %d violation(s): %s",
		len(e.Violations), strings.Join(parts, "; "))
}

func wrap(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	return &Error{Violations: vs}
}

// Check runs the broker-level invariants (rules 2–5). Its signature
// matches core.Broker.SetDebugHook, so a serial driver can install it
// directly: b.SetDebugHook(invariant.Check).
func Check(b *core.Broker) error {
	return wrap(brokerViolations(b))
}

// CheckPool verifies the mechanism invariant (rule 1): reservations in
// force at now never exceed the pool's capacity.
func CheckPool(p *resource.Pool, now time.Time) error {
	return wrap(poolViolations(p, now))
}

// CheckAll runs Check plus CheckPool over every pool, aggregating all
// violations into one error.
func CheckAll(b *core.Broker, now time.Time, pools ...*resource.Pool) error {
	vs := brokerViolations(b)
	for _, p := range pools {
		vs = append(vs, poolViolations(p, now)...)
	}
	return wrap(vs)
}

func poolViolations(p *resource.Pool, now time.Time) []Violation {
	if use := p.InUse(now); !use.FitsIn(p.Total()) {
		return []Violation{{
			Rule:   "pool-oversubscribed",
			Detail: fmt.Sprintf("pool %q holds %v > capacity %v", p.Name(), use, p.Total()),
		}}
	}
	return nil
}

func brokerViolations(b *core.Broker) []Violation {
	var vs []Violation
	allocs := b.Allocators()

	// Rule 2, per shard: no partition pool over-committed, and guaranteed
	// demand within that shard's deliverable bound C_G_eff + C_A. The
	// per-shard totals are also summed for the whole-domain conservation
	// check below, which must hold regardless of how admissions were
	// distributed across shards.
	var domainTotal, domainMax resource.Capacity
	for si, alloc := range allocs {
		plan := alloc.Plan()
		var gTotal resource.Capacity
		for _, u := range alloc.Snapshot() {
			gTotal = gTotal.Add(u.Guaranteed)
			if !u.Guaranteed.Add(u.BestEffort).FitsIn(u.Capacity.Sub(u.Offline)) {
				vs = append(vs, Violation{
					Rule:   "partition-overfull",
					Detail: fmt.Sprintf("shard %d pool %s: %+v", si, u.Pool, u),
				})
			}
		}
		gMax := plan.Guaranteed.Sub(alloc.Offline()).ClampMin(resource.Capacity{}).Add(plan.Adaptive)
		if !gTotal.FitsIn(gMax) {
			vs = append(vs, Violation{
				Rule:   "guaranteed-overcommit",
				Detail: fmt.Sprintf("shard %d: guaranteed %v exceeds deliverable %v", si, gTotal, gMax),
			})
		}
		domainTotal = domainTotal.Add(gTotal)
		domainMax = domainMax.Add(gMax)
	}
	if !domainTotal.FitsIn(domainMax) {
		vs = append(vs, Violation{
			Rule:   "domain-overcommit",
			Detail: fmt.Sprintf("domain guaranteed %v exceeds deliverable %v", domainTotal, domainMax),
		})
	}

	// Rules 3 and 4: session ↔ allocator consistency. Every allocator is
	// scanned for every session, so a grant booked on the wrong shard (or
	// duplicated across shards by a broken placement layer) is caught,
	// not just a missing one.
	live := make(map[string]bool)
	for _, doc := range b.Sessions(nil) {
		var got resource.Capacity
		holders := 0
		for _, alloc := range allocs {
			if g, held := alloc.GuaranteedAllocation(string(doc.ID)); held {
				got = g
				holders++
			}
		}
		if doc.State.Terminal() {
			if holders > 0 {
				vs = append(vs, Violation{
					Rule:   "terminal-grant",
					Detail: fmt.Sprintf("session %s is %s but still holds %v", doc.ID, doc.State, got),
				})
			}
			continue
		}
		live[string(doc.ID)] = true
		if holders == 0 {
			vs = append(vs, Violation{
				Rule:   "live-no-grant",
				Detail: fmt.Sprintf("live session %s (%s) has no allocator grant", doc.ID, doc.State),
			})
			continue
		}
		if holders > 1 {
			vs = append(vs, Violation{
				Rule:   "double-grant",
				Detail: fmt.Sprintf("session %s holds grants on %d shards", doc.ID, holders),
			})
		}
		if !doc.Spec.Accepts(doc.Allocated) {
			vs = append(vs, Violation{
				Rule:   "sla-unsatisfied",
				Detail: fmt.Sprintf("session %s allocation %v violates its SLA", doc.ID, doc.Allocated),
			})
		}
		if !got.Equal(doc.Allocated) {
			vs = append(vs, Violation{
				Rule:   "doc-allocator-skew",
				Detail: fmt.Sprintf("session %s document says %v, allocator says %v", doc.ID, doc.Allocated, got),
			})
		}
	}
	for si, alloc := range allocs {
		for _, user := range alloc.GuaranteedUsers() {
			if !live[user] {
				vs = append(vs, Violation{
					Rule:   "orphan-grant",
					Detail: fmt.Sprintf("guaranteed grant for %q on shard %d has no live session", user, si),
				})
			}
		}
	}

	// Rule 6 (batch atomicity): a flushed intake batch never leaves a
	// partially installed admission. Every member either installs
	// completely — grant, GARA reservation, session, route — or rolls
	// back completely, so a Proposed session with no reservation handle
	// is the footprint of a torn batch member. Holds on the direct path
	// too (proposal never outruns its reservation there either).
	for _, s := range b.SessionInfos() {
		if s.State == sla.StateProposed && s.Handle == "" {
			vs = append(vs, Violation{
				Rule:   "proposed-no-reservation",
				Detail: fmt.Sprintf("session %s is proposed with no GARA reservation handle", s.ID),
			})
		}
	}

	// Rule 5: accounting sanity.
	if rev := b.Ledger().NetRevenue(); rev != rev { // NaN check
		vs = append(vs, Violation{Rule: "ledger-nan", Detail: "net revenue is NaN"})
	}
	return vs
}

// CheckIntake verifies that the intake queues are fully drained — every
// submitted admission was flushed and resolved. It is a quiesce-point
// rule, not part of Check: between a Submit and its flush a non-empty
// queue is normal, so the debug hook must not see this rule.
func CheckIntake(b *core.Broker) error {
	if n := b.IntakePending(); n != 0 {
		return wrap([]Violation{{
			Rule:   "intake-undrained",
			Detail: fmt.Sprintf("%d admission(s) still queued at a quiesce point", n),
		}})
	}
	return nil
}

// CheckShadowInert is the shadow-evaluation rule: consulting a candidate
// policy must never mutate live broker state, so a shadow-on run of a
// seeded workload must produce exactly the state digest of the shadow-off
// run. The caller computes the two digests (sha256 over the
// deterministic report fields — see shadow.Digest); this rule only
// renders the verdict, keeping the oracle's violation taxonomy in one
// place.
func CheckShadowInert(offDigest, onDigest string) error {
	if offDigest == onDigest {
		return nil
	}
	return wrap([]Violation{{
		Rule:   "shadow-mutated-state",
		Detail: fmt.Sprintf("shadow-on digest %s differs from shadow-off digest %s", onDigest, offDigest),
	}})
}

// ReservationCheck configures CheckReservations.
type ReservationCheck struct {
	// Final enables the drain-only rules (leaked-reservation,
	// missing-refund). They compare the reservation table and the
	// ledger against the session set, which is only meaningful after
	// the workload has fully drained: faults disabled, every session
	// driven terminal, and ReconcileReservations run to completion.
	Final bool
}

// CheckReservations runs the fault-tolerance invariants the retry layer
// promises, against the broker and its GARA system:
//
//   - duplicate-reservation-tag (any quiesce point): at most one live
//     reservation per idempotency tag — a retried two-phase create must
//     adopt, never double-commit;
//   - leaked-reservation (Final only): every surviving reservation
//     belongs to a live session — nothing leaks across a crashed RM
//     once reconciliation has run;
//   - missing-refund (Final only): a session that ended its life
//     degraded was refunded the price difference; assumes pricing is
//     strictly monotone in capacity, as every shipped rate plan is.
func CheckReservations(b *core.Broker, g *gara.System, opt ReservationCheck) error {
	return wrap(reservationViolations(b, g, opt))
}

func reservationViolations(b *core.Broker, g *gara.System, opt ReservationCheck) []Violation {
	var vs []Violation
	reservations := g.Reservations()

	liveByTag := make(map[string]int)
	for _, r := range reservations {
		if r.Status == gara.StatusCanceled || r.Tag == "" {
			continue
		}
		liveByTag[r.Tag]++
	}
	var dups []string
	for tag, n := range liveByTag {
		if n > 1 {
			dups = append(dups, fmt.Sprintf("%s×%d", tag, n))
		}
	}
	sort.Strings(dups)
	for _, d := range dups {
		vs = append(vs, Violation{
			Rule:   "duplicate-reservation-tag",
			Detail: "double-committed reservation: " + d,
		})
	}
	if !opt.Final {
		return vs
	}

	infos := b.SessionInfos()
	liveSession := make(map[string]bool)
	for _, s := range infos {
		if !s.State.Terminal() {
			liveSession[string(s.ID)] = true
		}
	}
	for _, r := range reservations {
		if r.Status == gara.StatusCanceled {
			continue
		}
		if !liveSession[r.Tag] {
			vs = append(vs, Violation{
				Rule: "leaked-reservation",
				Detail: fmt.Sprintf("reservation %s (tag %q) is %s but no live session owns it",
					r.Handle, r.Tag, r.Status),
			})
		}
	}

	refunded := make(map[string]bool)
	for _, e := range b.Ledger().Entries() {
		if e.Kind == pricing.EntryRefund {
			refunded[string(e.SLA)] = true
		}
	}
	for _, s := range infos {
		if s.State.Terminal() && s.Degraded && !refunded[string(s.ID)] {
			vs = append(vs, Violation{
				Rule: "missing-refund",
				Detail: fmt.Sprintf("session %s was torn down while degraded with no refund on the ledger",
					s.ID),
			})
		}
	}
	return vs
}
