package soapx

import (
	"bytes"
	"sync"
	"testing"
)

type poolPayload struct {
	A string `xml:"a"`
	B int    `xml:"b"`
}

// TestMarshalAllocGate is the deterministic allocation gate for the
// pooled SOAP encode path. The pooled buffer eliminates the envelope
// scratch copies; the remaining allocations are the xml.Encoder's own
// bookkeeping plus the returned slice. A regression that reintroduces
// an intermediate []byte or drops pooling pushes this past the gate.
func TestMarshalAllocGate(t *testing.T) {
	p := &poolPayload{A: "hello", B: 42}
	// Warm the pool so the steady state is measured.
	if _, err := Marshal(p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Marshal(p); err != nil {
			t.Fatal(err)
		}
	})
	const gate = 10
	if allocs > gate {
		t.Errorf("Marshal allocates %.1f objects per call, gate is %d", allocs, gate)
	}
}

// TestMarshalConcurrentPooling hammers Marshal from many goroutines:
// pooled buffers must never leak one caller's bytes into another's
// output.
func TestMarshalConcurrentPooling(t *testing.T) {
	want, err := Marshal(&poolPayload{A: "stable", B: 7})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine, err := Marshal(&poolPayload{A: "stable", B: 7})
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 500; i++ {
				// Interleave other payload shapes to churn the pool.
				if _, err := Marshal(&poolPayload{A: "other", B: id*1000 + i}); err != nil {
					t.Error(err)
					return
				}
				got, err := Marshal(&poolPayload{A: "stable", B: 7})
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("pooled Marshal output corrupted:\ngot  %s\nwant %s", got, want)
					return
				}
				if !bytes.Equal(mine, want) {
					t.Error("previously returned slice mutated by later Marshal calls")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMarshalErrorDiscardsBuffer checks that a failed encode does not
// poison the pool with a partial document.
func TestMarshalErrorDiscardsBuffer(t *testing.T) {
	// Channels are not XML-serializable; Encode fails after the envelope
	// prefix was already written to the pooled buffer.
	if _, err := Marshal(make(chan int)); err == nil {
		t.Fatal("Marshal of a channel succeeded")
	}
	out, err := Marshal(&poolPayload{A: "clean", B: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(out, []byte("<soap:Envelope")); n != 1 {
		t.Errorf("output holds %d envelope starts, want 1:\n%s", n, out)
	}
}
