// Package soapx is a minimal SOAP 1.1-over-HTTP transport, standing in for
// the Tomcat/Axis stack of the paper's testbed (§6, Fig. 5: "Clients send
// XML messages to the AQoS broker using SOAP over HTTP"). It provides
// envelope marshaling, a server mux that dispatches on the body element's
// local name, and a client.
package soapx

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"gqosm/internal/faultx"
)

// ErrTransport wraps transport-level failures (connection refused,
// reset, injected faults on the wire): the request may or may not have
// reached the server, so callers may retry idempotent operations.
// SOAP faults are NOT transport errors — they are definitive answers.
var ErrTransport = errors.New("soapx: transport error")

// Namespace constants.
const (
	// EnvelopeNS is the SOAP 1.1 envelope namespace.
	EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"
	// ContentType is the SOAP 1.1 HTTP content type.
	ContentType = "text/xml; charset=utf-8"
)

// Fault is a SOAP fault, used both as a wire document and a Go error.
type Fault struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
	Code    string   `xml:"faultcode"`
	String  string   `xml:"faultstring"`
	Detail  string   `xml:"detail,omitempty"`
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

type envelope struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Body    body     `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type body struct {
	Inner []byte `xml:",innerxml"`
}

// bufPool recycles envelope scratch buffers across requests. Buffers
// that grew past maxPooledBuf are dropped rather than pinned in the
// pool by one oversized payload.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 64 << 10

func getBuf() *bytes.Buffer {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func putBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		bufPool.Put(buf)
	}
}

// marshalBuf writes payload's SOAP envelope into buf, encoding the body
// element straight into the buffer — no intermediate []byte. On error
// buf holds a partial document and must be discarded or reset.
func marshalBuf(buf *bytes.Buffer, payload any) error {
	buf.WriteString(xml.Header)
	buf.WriteString(`<soap:Envelope xmlns:soap="` + EnvelopeNS + `"><soap:Body>`)
	if err := xml.NewEncoder(buf).Encode(payload); err != nil {
		return fmt.Errorf("soapx: marshal body: %w", err)
	}
	buf.WriteString(`</soap:Body></soap:Envelope>`)
	return nil
}

// Marshal wraps the XML encoding of payload in a SOAP envelope. The
// returned slice is freshly allocated and owned by the caller; the
// server path writes from a pooled buffer instead (see ServeHTTP).
func Marshal(payload any) ([]byte, error) {
	buf := getBuf()
	if err := marshalBuf(buf, payload); err != nil {
		putBuf(buf)
		return nil, err
	}
	out := append([]byte(nil), buf.Bytes()...)
	putBuf(buf)
	return out, nil
}

// bodyElement returns the local name of the first element inside the Body
// and the raw body bytes.
func bodyElement(data []byte) (string, []byte, error) {
	var env envelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return "", nil, fmt.Errorf("soapx: bad envelope: %w", err)
	}
	dec := xml.NewDecoder(bytes.NewReader(env.Body.Inner))
	for {
		tok, err := dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return "", nil, errors.New("soapx: empty body")
			}
			return "", nil, fmt.Errorf("soapx: bad body: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			return start.Name.Local, env.Body.Inner, nil
		}
	}
}

// Unmarshal extracts the body payload of a SOAP envelope into v. If the
// body is a Fault it is returned as the error.
func Unmarshal(data []byte, v any) error {
	name, inner, err := bodyElement(data)
	if err != nil {
		return err
	}
	if name == "Fault" {
		var f Fault
		if err := xml.Unmarshal(inner, &f); err != nil {
			return fmt.Errorf("soapx: bad fault: %w", err)
		}
		return &f
	}
	if err := xml.Unmarshal(inner, v); err != nil {
		return fmt.Errorf("soapx: unmarshal body: %w", err)
	}
	return nil
}

// HandlerFunc processes one decoded request body and returns the response
// payload (marshaled into the response envelope) or an error (returned as
// a fault). The raw body bytes are provided; implementations unmarshal
// into their request type.
type HandlerFunc func(body []byte) (any, error)

// Mux dispatches SOAP requests on the body element's local name. Plain
// HTTP endpoints (metrics, profiling) can be mounted next to the SOAP
// service with HandleHTTP. It implements http.Handler. Safe for
// concurrent use.
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]HandlerFunc
	http     map[string]http.Handler

	// Faults injects server-side failures ahead of SOAP dispatch (site
	// "soapx.server"); nil injects nothing. Set at assembly time,
	// before the mux serves requests.
	Faults *faultx.Injector
}

// NewMux returns an empty mux.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]HandlerFunc), http: make(map[string]http.Handler)}
}

// Handle registers a handler for the given body element name, replacing
// any previous handler.
func (m *Mux) Handle(element string, h HandlerFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[element] = h
}

// HandleHTTP mounts a plain HTTP handler on the given URL path,
// replacing any previous handler for it. A path ending in "/" matches
// the whole subtree (like net/http's ServeMux), which is how pprof's
// /debug/pprof/ family is mounted. Matched requests bypass SOAP
// dispatch entirely: any method is allowed and the body is not parsed.
func (m *Mux) HandleHTTP(path string, h http.Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.http[path] = h
}

// httpHandler returns the plain-HTTP handler for path: an exact match
// wins, then the longest registered subtree prefix.
func (m *Mux) httpHandler(path string) http.Handler {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if h, ok := m.http[path]; ok {
		return h
	}
	var (
		best    http.Handler
		bestLen int
	)
	for p, h := range m.http {
		if len(p) > bestLen && p[len(p)-1] == '/' && strings.HasPrefix(path, p) {
			best, bestLen = h, len(p)
		}
	}
	return best
}

// ServeHTTP implements http.Handler.
func (m *Mux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := m.httpHandler(r.URL.Path); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	if r.Method != http.MethodPost {
		writeFault(w, http.StatusMethodNotAllowed, "Client", "SOAP requires POST", "")
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		writeFault(w, http.StatusBadRequest, "Client", "read body", err.Error())
		return
	}
	name, inner, err := bodyElement(data)
	if err != nil {
		writeFault(w, http.StatusBadRequest, "Client", "bad envelope", err.Error())
		return
	}
	m.mu.RLock()
	h, ok := m.handlers[name]
	inj := m.Faults
	m.mu.RUnlock()
	if !ok {
		writeFault(w, http.StatusBadRequest, "Client", "no handler for "+name, "")
		return
	}
	var resp any
	err = inj.Do("soapx.server", func() error {
		r, herr := h(inner)
		if herr == nil {
			resp = r
		}
		return herr
	})
	if err != nil {
		writeFault(w, http.StatusInternalServerError, "Server", err.Error(), "")
		return
	}
	buf := getBuf()
	if err := marshalBuf(buf, resp); err != nil {
		putBuf(buf)
		writeFault(w, http.StatusInternalServerError, "Server", "marshal response", err.Error())
		return
	}
	w.Header().Set("Content-Type", ContentType)
	_, _ = w.Write(buf.Bytes())
	putBuf(buf)
}

func writeFault(w http.ResponseWriter, status int, code, msg, detail string) {
	f := Fault{Code: "soap:" + code, String: msg, Detail: detail}
	buf := getBuf()
	if err := marshalBuf(buf, &f); err != nil {
		putBuf(buf)
		http.Error(w, msg, status)
		return
	}
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	putBuf(buf)
}

// Client calls SOAP endpoints.
type Client struct {
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Endpoint is the service URL.
	Endpoint string
	// Faults injects client-side transport failures (site
	// "soapx.client"); nil injects nothing.
	Faults *faultx.Injector
}

// Call sends request (marshaled into an envelope) and decodes the response
// body into response. SOAP faults are returned as *Fault errors;
// transport-level failures wrap ErrTransport.
func (c *Client) Call(request, response any) error {
	data, err := Marshal(request)
	if err != nil {
		return err
	}
	return c.Faults.Do("soapx.client", func() error {
		hc := c.HTTPClient
		if hc == nil {
			hc = http.DefaultClient
		}
		resp, err := hc.Post(c.Endpoint, ContentType, bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("soapx: post %s: %w (%v)", c.Endpoint, ErrTransport, err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		if err != nil {
			return fmt.Errorf("soapx: read response: %w (%v)", ErrTransport, err)
		}
		return Unmarshal(out, response)
	})
}
