package soapx

import (
	"encoding/xml"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type pingReq struct {
	XMLName xml.Name `xml:"ping"`
	Message string   `xml:"message"`
}

type pingResp struct {
	XMLName xml.Name `xml:"pingResponse"`
	Echo    string   `xml:"echo"`
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	data, err := Marshal(&pingReq{Message: "hello <grid>"})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s := string(data)
	if !strings.Contains(s, "<soap:Envelope") || !strings.Contains(s, "<soap:Body>") {
		t.Fatalf("envelope missing: %s", s)
	}
	var req pingReq
	if err := Unmarshal(data, &req); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if req.Message != "hello <grid>" {
		t.Errorf("Message = %q (escaping broken?)", req.Message)
	}
}

func TestUnmarshalFault(t *testing.T) {
	data, err := Marshal(&Fault{Code: "soap:Server", String: "boom", Detail: "d"})
	if err != nil {
		t.Fatal(err)
	}
	var resp pingResp
	err = Unmarshal(data, &resp)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.String != "boom" || !strings.Contains(f.Error(), "boom") {
		t.Errorf("fault = %+v", f)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if err := Unmarshal([]byte("not xml"), &pingReq{}); err == nil {
		t.Error("bad envelope accepted")
	}
	empty := []byte(`<soap:Envelope xmlns:soap="` + EnvelopeNS + `"><soap:Body></soap:Body></soap:Envelope>`)
	if err := Unmarshal(empty, &pingReq{}); err == nil {
		t.Error("empty body accepted")
	}
}

func newEchoServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := NewMux()
	mux.Handle("ping", func(body []byte) (any, error) {
		var req pingReq
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		if req.Message == "fail" {
			return nil, errors.New("handler exploded")
		}
		return &pingResp{Echo: req.Message}, nil
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestClientServerRoundTrip(t *testing.T) {
	srv := newEchoServer(t)
	c := Client{Endpoint: srv.URL}
	var resp pingResp
	if err := c.Call(&pingReq{Message: "qos"}, &resp); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Echo != "qos" {
		t.Errorf("Echo = %q", resp.Echo)
	}
}

func TestServerFaultPropagatesToClient(t *testing.T) {
	srv := newEchoServer(t)
	c := Client{Endpoint: srv.URL}
	var resp pingResp
	err := c.Call(&pingReq{Message: "fail"}, &resp)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if !strings.Contains(f.String, "handler exploded") {
		t.Errorf("fault = %+v", f)
	}
}

func TestServerUnknownElement(t *testing.T) {
	srv := newEchoServer(t)
	c := Client{Endpoint: srv.URL}
	type nope struct {
		XMLName xml.Name `xml:"nope"`
	}
	var resp pingResp
	err := c.Call(&nope{}, &resp)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if !strings.Contains(f.String, "no handler") {
		t.Errorf("fault = %+v", f)
	}
}

func TestServerRejectsGet(t *testing.T) {
	srv := newEchoServer(t)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv := newEchoServer(t)
	resp, err := http.Post(srv.URL, ContentType, strings.NewReader("<not-soap/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage status = %d", resp.StatusCode)
	}
}

func TestClientBadEndpoint(t *testing.T) {
	c := Client{Endpoint: "http://127.0.0.1:1/nope"}
	var resp pingResp
	if err := c.Call(&pingReq{Message: "x"}, &resp); err == nil {
		t.Error("Call to dead endpoint succeeded")
	}
}

func TestHandleHTTPExactPath(t *testing.T) {
	mux := NewMux()
	mux.Handle("ping", func(body []byte) (any, error) {
		var req pingReq
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return &pingResp{Echo: req.Message}, nil
	})
	mux.HandleHTTP("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("metric_total 1\n"))
	}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Plain GET on the mounted path bypasses SOAP dispatch.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "metric_total 1") {
		t.Fatalf("GET /metrics = %d %q", resp.StatusCode, body)
	}

	// SOAP dispatch on other paths is untouched.
	c := &Client{Endpoint: srv.URL + "/"}
	var pr pingResp
	if err := c.Call(&pingReq{Message: "hi"}, &pr); err != nil {
		t.Fatalf("SOAP call after HandleHTTP: %v", err)
	}
	if pr.Echo != "hi" {
		t.Errorf("echo = %q", pr.Echo)
	}

	// Unmounted paths still fault on GET.
	resp2, err := http.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp2)
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /other = %d, want 405", resp2.StatusCode)
	}
}

func TestHandleHTTPSubtree(t *testing.T) {
	mux := NewMux()
	mux.HandleHTTP("/debug/pprof/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pprof:" + r.URL.Path))
	}))
	mux.HandleHTTP("/debug/pprof/cmdline", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("cmdline"))
	}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, tc := range []struct{ path, want string }{
		{"/debug/pprof/", "pprof:/debug/pprof/"},
		{"/debug/pprof/heap", "pprof:/debug/pprof/heap"},
		{"/debug/pprof/cmdline", "cmdline"}, // exact beats subtree
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if body := readAll(t, resp); body != tc.want {
			t.Errorf("GET %s = %q, want %q", tc.path, body, tc.want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestHandleHTTPMethodsOnExactMount: an exact mount owns EVERY method on
// its path — HEAD and POST route to the mounted handler, never to SOAP
// dispatch (a POST body on a mounted path must not be parsed as an
// envelope).
func TestHandleHTTPMethodsOnExactMount(t *testing.T) {
	mux := NewMux()
	mux.Handle("ping", func(body []byte) (any, error) {
		return &pingResp{Echo: "soap"}, nil
	})
	mux.HandleHTTP("/hook", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Handler", "hook")
		if r.Method != http.MethodHead {
			w.Write([]byte("hook:" + r.Method))
		}
	}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// HEAD reaches the handler (a bare Mux would answer 405 SOAP-fault).
	resp, err := http.Head(srv.URL + "/hook")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Handler") != "hook" {
		t.Errorf("HEAD /hook = %d handler=%q, want 200 hook", resp.StatusCode, resp.Header.Get("X-Handler"))
	}

	// POST with a valid SOAP envelope still goes to the HTTP handler:
	// the mount bypasses envelope parsing entirely.
	envelope, err := Marshal(&pingReq{Message: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(srv.URL+"/hook", "text/xml", strings.NewReader(string(envelope)))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp2); body != "hook:POST" {
		t.Errorf("POST /hook = %q, want %q", body, "hook:POST")
	}

	// SOAP POSTs on unmounted paths are still dispatched.
	c := &Client{Endpoint: srv.URL + "/"}
	var pr pingResp
	if err := c.Call(&pingReq{Message: "hi"}, &pr); err != nil || pr.Echo != "soap" {
		t.Errorf("SOAP beside exact mount: echo=%q err=%v", pr.Echo, err)
	}
}

// TestHandleHTTPSubtreeShadowsSOAP: a subtree mount captures SOAP-shaped
// POSTs under its prefix — mounting a subtree carves that URL space out
// of SOAP dispatch, which is exactly how the JSON API coexists with the
// SOAP endpoint on one listener.
func TestHandleHTTPSubtreeShadowsSOAP(t *testing.T) {
	mux := NewMux()
	mux.Handle("ping", func(body []byte) (any, error) {
		return &pingResp{Echo: "soap"}, nil
	})
	mux.HandleHTTP("/api/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("api:" + r.URL.Path))
	}))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// A SOAP envelope POSTed under the subtree lands in the HTTP
	// handler, not the ping dispatcher.
	envelope, err := Marshal(&pingReq{Message: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/api/ping", "text/xml", strings.NewReader(string(envelope)))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); body != "api:/api/ping" {
		t.Errorf("POST under subtree = %q, want %q", body, "api:/api/ping")
	}

	// The subtree root itself is captured too.
	resp2, err := http.Get(srv.URL + "/api/")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp2); body != "api:/api/" {
		t.Errorf("GET subtree root = %q, want %q", body, "api:/api/")
	}

	// Outside the subtree, SOAP dispatch is untouched.
	c := &Client{Endpoint: srv.URL + "/"}
	var pr pingResp
	if err := c.Call(&pingReq{Message: "hi"}, &pr); err != nil || pr.Echo != "soap" {
		t.Errorf("SOAP beside subtree mount: echo=%q err=%v", pr.Echo, err)
	}
}
