package soapx

import (
	"encoding/xml"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

type pingReq struct {
	XMLName xml.Name `xml:"ping"`
	Message string   `xml:"message"`
}

type pingResp struct {
	XMLName xml.Name `xml:"pingResponse"`
	Echo    string   `xml:"echo"`
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	data, err := Marshal(&pingReq{Message: "hello <grid>"})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s := string(data)
	if !strings.Contains(s, "<soap:Envelope") || !strings.Contains(s, "<soap:Body>") {
		t.Fatalf("envelope missing: %s", s)
	}
	var req pingReq
	if err := Unmarshal(data, &req); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if req.Message != "hello <grid>" {
		t.Errorf("Message = %q (escaping broken?)", req.Message)
	}
}

func TestUnmarshalFault(t *testing.T) {
	data, err := Marshal(&Fault{Code: "soap:Server", String: "boom", Detail: "d"})
	if err != nil {
		t.Fatal(err)
	}
	var resp pingResp
	err = Unmarshal(data, &resp)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.String != "boom" || !strings.Contains(f.Error(), "boom") {
		t.Errorf("fault = %+v", f)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if err := Unmarshal([]byte("not xml"), &pingReq{}); err == nil {
		t.Error("bad envelope accepted")
	}
	empty := []byte(`<soap:Envelope xmlns:soap="` + EnvelopeNS + `"><soap:Body></soap:Body></soap:Envelope>`)
	if err := Unmarshal(empty, &pingReq{}); err == nil {
		t.Error("empty body accepted")
	}
}

func newEchoServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := NewMux()
	mux.Handle("ping", func(body []byte) (any, error) {
		var req pingReq
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		if req.Message == "fail" {
			return nil, errors.New("handler exploded")
		}
		return &pingResp{Echo: req.Message}, nil
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestClientServerRoundTrip(t *testing.T) {
	srv := newEchoServer(t)
	c := Client{Endpoint: srv.URL}
	var resp pingResp
	if err := c.Call(&pingReq{Message: "qos"}, &resp); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Echo != "qos" {
		t.Errorf("Echo = %q", resp.Echo)
	}
}

func TestServerFaultPropagatesToClient(t *testing.T) {
	srv := newEchoServer(t)
	c := Client{Endpoint: srv.URL}
	var resp pingResp
	err := c.Call(&pingReq{Message: "fail"}, &resp)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if !strings.Contains(f.String, "handler exploded") {
		t.Errorf("fault = %+v", f)
	}
}

func TestServerUnknownElement(t *testing.T) {
	srv := newEchoServer(t)
	c := Client{Endpoint: srv.URL}
	type nope struct {
		XMLName xml.Name `xml:"nope"`
	}
	var resp pingResp
	err := c.Call(&nope{}, &resp)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if !strings.Contains(f.String, "no handler") {
		t.Errorf("fault = %+v", f)
	}
}

func TestServerRejectsGet(t *testing.T) {
	srv := newEchoServer(t)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv := newEchoServer(t)
	resp, err := http.Post(srv.URL, ContentType, strings.NewReader("<not-soap/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage status = %d", resp.StatusCode)
	}
}

func TestClientBadEndpoint(t *testing.T) {
	c := Client{Endpoint: "http://127.0.0.1:1/nope"}
	var resp pingResp
	if err := c.Call(&pingReq{Message: "x"}, &resp); err == nil {
		t.Error("Call to dead endpoint succeeded")
	}
}
