// Package resource models Grid resource capacity: multi-dimensional
// capacity vectors (CPU nodes, memory, disk, network bandwidth), pools that
// hand out interval reservations against a total capacity, and
// administrative domains that group pools.
//
// The paper's adaptation algorithm (§5.4) speaks of "resource capacity"
// encompassing CPU, network and storage resources; Capacity is the
// concrete, comparable representation of that quantity used throughout the
// broker.
package resource

import (
	"fmt"
	"math"
	"strings"
)

// Kind identifies a capacity dimension.
type Kind int

// The capacity dimensions the G-QoSM broker manages. These correspond to
// the SLA parameters in the paper's Tables 1 and 4 (CPU nodes, memory MB,
// disk GB, bandwidth Mbps).
const (
	CPU Kind = iota + 1
	MemoryMB
	DiskGB
	BandwidthMbps
)

// Kinds lists every capacity dimension in canonical order.
var Kinds = [...]Kind{CPU, MemoryMB, DiskGB, BandwidthMbps}

// String returns the canonical name of the dimension.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case MemoryMB:
		return "memory-mb"
	case DiskGB:
		return "disk-gb"
	case BandwidthMbps:
		return "bandwidth-mbps"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Unit returns the human-readable unit for the dimension, as printed in the
// paper's SLA documents.
func (k Kind) Unit() string {
	switch k {
	case CPU:
		return "nodes"
	case MemoryMB:
		return "MB"
	case DiskGB:
		return "GB"
	case BandwidthMbps:
		return "Mbps"
	default:
		return ""
	}
}

// Capacity is a non-negative quantity of each resource dimension. The zero
// value is the empty capacity.
type Capacity struct {
	CPU           float64 // processor nodes
	MemoryMB      float64 // primary memory, megabytes
	DiskGB        float64 // disk storage, gigabytes
	BandwidthMbps float64 // network bandwidth, megabits/second
}

// Get returns the quantity of dimension k.
func (c Capacity) Get(k Kind) float64 {
	switch k {
	case CPU:
		return c.CPU
	case MemoryMB:
		return c.MemoryMB
	case DiskGB:
		return c.DiskGB
	case BandwidthMbps:
		return c.BandwidthMbps
	default:
		return 0
	}
}

// With returns a copy of c with dimension k set to v.
func (c Capacity) With(k Kind, v float64) Capacity {
	switch k {
	case CPU:
		c.CPU = v
	case MemoryMB:
		c.MemoryMB = v
	case DiskGB:
		c.DiskGB = v
	case BandwidthMbps:
		c.BandwidthMbps = v
	}
	return c
}

// Add returns c + o element-wise.
func (c Capacity) Add(o Capacity) Capacity {
	return Capacity{
		CPU:           c.CPU + o.CPU,
		MemoryMB:      c.MemoryMB + o.MemoryMB,
		DiskGB:        c.DiskGB + o.DiskGB,
		BandwidthMbps: c.BandwidthMbps + o.BandwidthMbps,
	}
}

// Sub returns c − o element-wise. The result may have negative dimensions;
// callers that need a floor should follow with ClampMin.
func (c Capacity) Sub(o Capacity) Capacity {
	return Capacity{
		CPU:           c.CPU - o.CPU,
		MemoryMB:      c.MemoryMB - o.MemoryMB,
		DiskGB:        c.DiskGB - o.DiskGB,
		BandwidthMbps: c.BandwidthMbps - o.BandwidthMbps,
	}
}

// Scale returns c with every dimension multiplied by f.
func (c Capacity) Scale(f float64) Capacity {
	return Capacity{
		CPU:           c.CPU * f,
		MemoryMB:      c.MemoryMB * f,
		DiskGB:        c.DiskGB * f,
		BandwidthMbps: c.BandwidthMbps * f,
	}
}

// ClampMin returns c with every dimension raised to at least min's value in
// that dimension.
func (c Capacity) ClampMin(min Capacity) Capacity {
	return Capacity{
		CPU:           math.Max(c.CPU, min.CPU),
		MemoryMB:      math.Max(c.MemoryMB, min.MemoryMB),
		DiskGB:        math.Max(c.DiskGB, min.DiskGB),
		BandwidthMbps: math.Max(c.BandwidthMbps, min.BandwidthMbps),
	}
}

// Min returns the element-wise minimum of c and o.
func (c Capacity) Min(o Capacity) Capacity {
	return Capacity{
		CPU:           math.Min(c.CPU, o.CPU),
		MemoryMB:      math.Min(c.MemoryMB, o.MemoryMB),
		DiskGB:        math.Min(c.DiskGB, o.DiskGB),
		BandwidthMbps: math.Min(c.BandwidthMbps, o.BandwidthMbps),
	}
}

// Max returns the element-wise maximum of c and o.
func (c Capacity) Max(o Capacity) Capacity {
	return Capacity{
		CPU:           math.Max(c.CPU, o.CPU),
		MemoryMB:      math.Max(c.MemoryMB, o.MemoryMB),
		DiskGB:        math.Max(c.DiskGB, o.DiskGB),
		BandwidthMbps: math.Max(c.BandwidthMbps, o.BandwidthMbps),
	}
}

// FitsIn reports whether c ≤ o in every dimension, within Epsilon.
func (c Capacity) FitsIn(o Capacity) bool {
	return c.CPU <= o.CPU+Epsilon &&
		c.MemoryMB <= o.MemoryMB+Epsilon &&
		c.DiskGB <= o.DiskGB+Epsilon &&
		c.BandwidthMbps <= o.BandwidthMbps+Epsilon
}

// Epsilon is the tolerance used for capacity comparisons: quantities that
// differ by less than Epsilon are considered equal. Resource quantities in
// the paper are small integers or simple decimals, so a fixed absolute
// tolerance suffices.
const Epsilon = 1e-9

// IsZero reports whether every dimension is zero (within Epsilon).
func (c Capacity) IsZero() bool {
	return math.Abs(c.CPU) <= Epsilon &&
		math.Abs(c.MemoryMB) <= Epsilon &&
		math.Abs(c.DiskGB) <= Epsilon &&
		math.Abs(c.BandwidthMbps) <= Epsilon
}

// IsNonNegative reports whether no dimension is below −Epsilon.
func (c Capacity) IsNonNegative() bool {
	return c.CPU >= -Epsilon &&
		c.MemoryMB >= -Epsilon &&
		c.DiskGB >= -Epsilon &&
		c.BandwidthMbps >= -Epsilon
}

// Equal reports whether c and o match in every dimension within Epsilon.
func (c Capacity) Equal(o Capacity) bool {
	return math.Abs(c.CPU-o.CPU) <= Epsilon &&
		math.Abs(c.MemoryMB-o.MemoryMB) <= Epsilon &&
		math.Abs(c.DiskGB-o.DiskGB) <= Epsilon &&
		math.Abs(c.BandwidthMbps-o.BandwidthMbps) <= Epsilon
}

// String renders the non-zero dimensions, e.g.
// "cpu=10 memory-mb=2048 disk-gb=15".
func (c Capacity) String() string {
	var parts []string
	for _, k := range Kinds {
		if v := c.Get(k); math.Abs(v) > Epsilon {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

// Nodes is shorthand for a CPU-only capacity of n processor nodes.
func Nodes(n float64) Capacity { return Capacity{CPU: n} }

// Bandwidth is shorthand for a bandwidth-only capacity of m Mbps.
func Bandwidth(m float64) Capacity { return Capacity{BandwidthMbps: m} }
