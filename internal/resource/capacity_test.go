package resource

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func capFromInts(a, b, c, d int) Capacity {
	return Capacity{
		CPU:           float64(a % 1000),
		MemoryMB:      float64(b % 100000),
		DiskGB:        float64(c % 10000),
		BandwidthMbps: float64(d % 10000),
	}
}

func TestCapacityGetWith(t *testing.T) {
	var c Capacity
	for i, k := range Kinds {
		c = c.With(k, float64(i+1))
	}
	for i, k := range Kinds {
		if got := c.Get(k); got != float64(i+1) {
			t.Errorf("Get(%v) = %g, want %d", k, got, i+1)
		}
	}
	if got := c.Get(Kind(99)); got != 0 {
		t.Errorf("Get(unknown) = %g, want 0", got)
	}
}

func TestCapacityArithmetic(t *testing.T) {
	a := Capacity{CPU: 10, MemoryMB: 2048, DiskGB: 15, BandwidthMbps: 622}
	b := Capacity{CPU: 4, MemoryMB: 48, BandwidthMbps: 45}

	sum := a.Add(b)
	want := Capacity{CPU: 14, MemoryMB: 2096, DiskGB: 15, BandwidthMbps: 667}
	if !sum.Equal(want) {
		t.Errorf("Add = %v, want %v", sum, want)
	}
	if diff := sum.Sub(b); !diff.Equal(a) {
		t.Errorf("Sub = %v, want %v", diff, a)
	}
	if sc := b.Scale(2); !sc.Equal(Capacity{CPU: 8, MemoryMB: 96, BandwidthMbps: 90}) {
		t.Errorf("Scale = %v", sc)
	}
}

func TestCapacityFitsIn(t *testing.T) {
	tests := []struct {
		name string
		c, o Capacity
		want bool
	}{
		{"empty fits empty", Capacity{}, Capacity{}, true},
		{"smaller fits", Nodes(4), Nodes(10), true},
		{"equal fits", Nodes(10), Nodes(10), true},
		{"larger does not", Nodes(11), Nodes(10), false},
		{"one dimension over", Capacity{CPU: 1, MemoryMB: 64}, Capacity{CPU: 4, MemoryMB: 32}, false},
		{"within epsilon", Nodes(10 + Epsilon/2), Nodes(10), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.FitsIn(tt.o); got != tt.want {
				t.Errorf("FitsIn = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCapacityMinMaxClamp(t *testing.T) {
	a := Capacity{CPU: 10, MemoryMB: 100}
	b := Capacity{CPU: 5, MemoryMB: 200}
	if got := a.Min(b); !got.Equal(Capacity{CPU: 5, MemoryMB: 100}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); !got.Equal(Capacity{CPU: 10, MemoryMB: 200}) {
		t.Errorf("Max = %v", got)
	}
	neg := Capacity{CPU: -3, MemoryMB: 7}
	if got := neg.ClampMin(Capacity{}); !got.Equal(Capacity{MemoryMB: 7}) {
		t.Errorf("ClampMin = %v", got)
	}
}

func TestCapacityPredicates(t *testing.T) {
	if !(Capacity{}).IsZero() {
		t.Error("zero capacity reported non-zero")
	}
	if (Nodes(1)).IsZero() {
		t.Error("non-zero capacity reported zero")
	}
	if !(Nodes(1)).IsNonNegative() {
		t.Error("positive capacity reported negative")
	}
	if (Capacity{DiskGB: -1}).IsNonNegative() {
		t.Error("negative capacity reported non-negative")
	}
}

func TestCapacityString(t *testing.T) {
	if got := (Capacity{}).String(); got != "empty" {
		t.Errorf("empty String = %q", got)
	}
	s := Capacity{CPU: 10, MemoryMB: 2048, DiskGB: 15}.String()
	for _, want := range []string{"cpu=10", "memory-mb=2048", "disk-gb=15"} {
		if !strings.Contains(s, want) {
			t.Errorf("String = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "bandwidth") {
		t.Errorf("String = %q, zero dimension should be omitted", s)
	}
}

func TestKindStringUnit(t *testing.T) {
	tests := []struct {
		k          Kind
		name, unit string
	}{
		{CPU, "cpu", "nodes"},
		{MemoryMB, "memory-mb", "MB"},
		{DiskGB, "disk-gb", "GB"},
		{BandwidthMbps, "bandwidth-mbps", "Mbps"},
	}
	for _, tt := range tests {
		if tt.k.String() != tt.name {
			t.Errorf("%v.String() = %q, want %q", tt.k, tt.k.String(), tt.name)
		}
		if tt.k.Unit() != tt.unit {
			t.Errorf("%v.Unit() = %q, want %q", tt.k, tt.k.Unit(), tt.unit)
		}
	}
	if got := Kind(42).String(); got != "kind(42)" {
		t.Errorf("unknown Kind String = %q", got)
	}
	if got := Kind(42).Unit(); got != "" {
		t.Errorf("unknown Kind Unit = %q", got)
	}
}

// Property: Add is commutative and associative; Sub inverts Add.
func TestCapacityAddProperties(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 int) bool {
		a := capFromInts(a1, a2, a3, a4)
		b := capFromInts(b1, b2, b3, b4)
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FitsIn is a partial order compatible with Add: if a fits in b
// then a+c fits in b+c.
func TestCapacityFitsInMonotone(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2 int) bool {
		a := capFromInts(a1, a2, a1, a2)
		b := a.Add(capFromInts(abs(b1), abs(b2), abs(b1), abs(b2))) // b ≥ a
		c := capFromInts(c1, c2, c1, c2)
		if !a.FitsIn(b) {
			return false
		}
		return a.Add(c).FitsIn(b.Add(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Min/Max bound their inputs.
func TestCapacityMinMaxBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a := Capacity{CPU: rng.Float64() * 100, MemoryMB: rng.Float64() * 100,
			DiskGB: rng.Float64() * 100, BandwidthMbps: rng.Float64() * 100}
		b := Capacity{CPU: rng.Float64() * 100, MemoryMB: rng.Float64() * 100,
			DiskGB: rng.Float64() * 100, BandwidthMbps: rng.Float64() * 100}
		min, max := a.Min(b), a.Max(b)
		if !min.FitsIn(a) || !min.FitsIn(b) {
			t.Fatalf("Min(%v,%v)=%v exceeds an input", a, b, min)
		}
		if !a.FitsIn(max) || !b.FitsIn(max) {
			t.Fatalf("Max(%v,%v)=%v below an input", a, b, max)
		}
		if !min.Add(max).Equal(a.Add(b)) {
			t.Fatalf("min+max != a+b for %v, %v", a, b)
		}
	}
}

func TestShorthands(t *testing.T) {
	if n := Nodes(26); n.CPU != 26 || n.MemoryMB != 0 {
		t.Errorf("Nodes(26) = %v", n)
	}
	if bw := Bandwidth(622); bw.BandwidthMbps != 622 || bw.CPU != 0 {
		t.Errorf("Bandwidth(622) = %v", bw)
	}
}

func abs(x int) int {
	if x == math.MinInt {
		return math.MaxInt
	}
	if x < 0 {
		return -x
	}
	return x
}
