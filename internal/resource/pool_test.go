package resource

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

var (
	tBase = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	tEnd  = tBase.Add(8 * time.Hour)
)

func hours(h int) time.Time { return tBase.Add(time.Duration(h) * time.Hour) }

func TestPoolReserveRelease(t *testing.T) {
	p := NewPool("sgi", Nodes(26))
	r, err := p.Reserve(Nodes(10), tBase, tEnd, "sla-3")
	if err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if r.Tag != "sla-3" {
		t.Errorf("Tag = %q", r.Tag)
	}
	if got := p.InUse(tBase); !got.Equal(Nodes(10)) {
		t.Errorf("InUse = %v, want 10 nodes", got)
	}
	if got := p.Available(tBase); !got.Equal(Nodes(16)) {
		t.Errorf("Available = %v, want 16 nodes", got)
	}
	if err := p.Release(r.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := p.Available(tBase); !got.Equal(Nodes(26)) {
		t.Errorf("Available after release = %v, want 26", got)
	}
	if err := p.Release(r.ID); !errors.Is(err, ErrUnknownReservation) {
		t.Errorf("double Release err = %v, want ErrUnknownReservation", err)
	}
}

func TestPoolRejectsOversubscription(t *testing.T) {
	p := NewPool("sgi", Nodes(26))
	if _, err := p.Reserve(Nodes(20), tBase, tEnd, ""); err != nil {
		t.Fatalf("first Reserve: %v", err)
	}
	if _, err := p.Reserve(Nodes(7), tBase, tEnd, ""); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("over-reserve err = %v, want ErrInsufficientCapacity", err)
	}
	// Exactly filling the pool is fine.
	if _, err := p.Reserve(Nodes(6), tBase, tEnd, ""); err != nil {
		t.Fatalf("exact-fit Reserve: %v", err)
	}
}

func TestPoolRejectsBadInput(t *testing.T) {
	p := NewPool("p", Nodes(10))
	if _, err := p.Reserve(Nodes(1), tEnd, tBase, ""); !errors.Is(err, ErrBadInterval) {
		t.Errorf("inverted interval err = %v", err)
	}
	if _, err := p.Reserve(Nodes(1), tBase, tBase, ""); !errors.Is(err, ErrBadInterval) {
		t.Errorf("empty interval err = %v", err)
	}
	if _, err := p.Reserve(Nodes(-1), tBase, tEnd, ""); err == nil {
		t.Error("negative amount accepted")
	}
}

func TestPoolIntervalOverlap(t *testing.T) {
	// Reservations on disjoint intervals share capacity.
	p := NewPool("p", Nodes(10))
	if _, err := p.Reserve(Nodes(10), hours(0), hours(2), "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Reserve(Nodes(10), hours(2), hours(4), "b"); err != nil {
		t.Fatalf("back-to-back reservation rejected: %v", err)
	}
	// A reservation spanning both is rejected.
	if _, err := p.Reserve(Nodes(1), hours(1), hours(3), "c"); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("overlapping reservation err = %v", err)
	}
	// But it fits after hour 4.
	if _, err := p.Reserve(Nodes(10), hours(4), hours(5), "d"); err != nil {
		t.Fatal(err)
	}
}

func TestPoolMinAvailableSeesInteriorPeaks(t *testing.T) {
	// A reservation that begins strictly inside the probe window must be
	// counted even though availability at the window start is high.
	p := NewPool("p", Nodes(10))
	if _, err := p.Reserve(Nodes(8), hours(2), hours(3), ""); err != nil {
		t.Fatal(err)
	}
	if got := p.MinAvailable(hours(0), hours(4)); !got.Equal(Nodes(2)) {
		t.Fatalf("MinAvailable = %v, want 2 nodes", got)
	}
	if got := p.MinAvailable(hours(0), hours(2)); !got.Equal(Nodes(10)) {
		t.Fatalf("MinAvailable before peak = %v, want 10", got)
	}
	if _, err := p.Reserve(Nodes(3), hours(0), hours(4), ""); err == nil {
		t.Fatal("reservation through interior peak accepted")
	}
	if _, err := p.Reserve(Nodes(2), hours(0), hours(4), ""); err != nil {
		t.Fatalf("fitting reservation rejected: %v", err)
	}
}

func TestPoolResize(t *testing.T) {
	p := NewPool("p", Nodes(26))
	r, err := p.Reserve(Nodes(10), tBase, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	other, err := p.Reserve(Nodes(10), tBase, tEnd, "")
	if err != nil {
		t.Fatal(err)
	}
	// Grow within remaining capacity (26-10 others = 16 available to r).
	if err := p.Resize(r.ID, Nodes(16)); err != nil {
		t.Fatalf("Resize grow: %v", err)
	}
	if got := p.InUse(tBase); !got.Equal(Nodes(26)) {
		t.Errorf("InUse = %v", got)
	}
	// Growing beyond fails and leaves the amount untouched.
	if err := p.Resize(r.ID, Nodes(17)); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("Resize over err = %v", err)
	}
	got, err := p.Get(r.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Amount.Equal(Nodes(16)) {
		t.Errorf("amount after failed resize = %v, want 16", got.Amount)
	}
	// Shrink always works.
	if err := p.Resize(other.ID, Nodes(2)); err != nil {
		t.Fatalf("Resize shrink: %v", err)
	}
	if err := p.Resize("nope", Nodes(1)); !errors.Is(err, ErrUnknownReservation) {
		t.Errorf("Resize unknown err = %v", err)
	}
	if err := p.Resize(r.ID, Nodes(-1)); err == nil {
		t.Error("Resize negative accepted")
	}
}

func TestPoolExtend(t *testing.T) {
	p := NewPool("p", Nodes(10))
	r, err := p.Reserve(Nodes(10), hours(0), hours(2), "")
	if err != nil {
		t.Fatal(err)
	}
	blocker, err := p.Reserve(Nodes(5), hours(3), hours(4), "")
	if err != nil {
		t.Fatal(err)
	}
	// Extending into free space succeeds.
	if err := p.Extend(r.ID, hours(3)); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	// Extending into the blocker fails.
	if err := p.Extend(r.ID, hours(4)); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("Extend into blocker err = %v", err)
	}
	// Shortening succeeds.
	if err := p.Extend(r.ID, hours(1)); err != nil {
		t.Fatalf("shorten: %v", err)
	}
	// End before start is rejected.
	if err := p.Extend(blocker.ID, hours(2)); !errors.Is(err, ErrBadInterval) {
		t.Fatalf("Extend before start err = %v", err)
	}
	if err := p.Extend("nope", hours(5)); !errors.Is(err, ErrUnknownReservation) {
		t.Errorf("Extend unknown err = %v", err)
	}
}

func TestPoolOfflineFailure(t *testing.T) {
	// The §5.6 event: three of the guaranteed pool's processors become
	// inaccessible; existing reservations persist and the pool reports the
	// shortfall instead of lying about availability.
	p := NewPool("G", Nodes(15))
	if _, err := p.Reserve(Nodes(14), tBase, tEnd, ""); err != nil {
		t.Fatal(err)
	}
	p.SetOffline(Nodes(3))
	if got := p.Online(); !got.Equal(Nodes(12)) {
		t.Errorf("Online = %v, want 12", got)
	}
	if got := p.Available(tBase); !got.IsZero() {
		t.Errorf("Available = %v, want 0 (clamped)", got)
	}
	if got := p.Oversubscription(tBase); !got.Equal(Nodes(2)) {
		t.Errorf("Oversubscription = %v, want 2", got)
	}
	// Recovery at t3.
	p.SetOffline(Capacity{})
	if got := p.Oversubscription(tBase); !got.IsZero() {
		t.Errorf("Oversubscription after recovery = %v", got)
	}
	if got := p.Available(tBase); !got.Equal(Nodes(1)) {
		t.Errorf("Available after recovery = %v, want 1", got)
	}
}

func TestPoolGC(t *testing.T) {
	p := NewPool("p", Nodes(10))
	if _, err := p.Reserve(Nodes(1), hours(0), hours(1), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Reserve(Nodes(1), hours(0), hours(5), ""); err != nil {
		t.Fatal(err)
	}
	if n := p.GC(hours(2)); n != 1 {
		t.Fatalf("GC = %d, want 1", n)
	}
	if len(p.Reservations()) != 1 {
		t.Fatalf("Reservations = %d, want 1", len(p.Reservations()))
	}
}

func TestPoolReservationsSortedAndCopied(t *testing.T) {
	p := NewPool("p", Nodes(10))
	for i := 0; i < 5; i++ {
		if _, err := p.Reserve(Nodes(1), tBase, tEnd, ""); err != nil {
			t.Fatal(err)
		}
	}
	rs := p.Reservations()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].ID >= rs[i].ID {
			t.Fatalf("not sorted: %v before %v", rs[i-1].ID, rs[i].ID)
		}
	}
	// Mutating the returned copy must not affect the pool.
	rs[0].Amount = Nodes(99)
	got, err := p.Get(rs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Amount.Equal(Nodes(1)) {
		t.Fatal("caller mutation leaked into pool")
	}
}

// Property: under random reserve/release/resize traffic the pool never
// admits a state where in-use exceeds online capacity at any reservation
// boundary (the pool's core invariant).
func TestPoolNeverOversubscribedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPool("p", Capacity{CPU: 20, MemoryMB: 4096, DiskGB: 100, BandwidthMbps: 1000})
	var held []ReservationID
	for step := 0; step < 3000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // reserve
			start := hours(rng.Intn(20))
			end := start.Add(time.Duration(1+rng.Intn(10)) * time.Hour)
			amount := Capacity{
				CPU:           float64(rng.Intn(10)),
				MemoryMB:      float64(rng.Intn(2048)),
				DiskGB:        float64(rng.Intn(50)),
				BandwidthMbps: float64(rng.Intn(500)),
			}
			if r, err := p.Reserve(amount, start, end, ""); err == nil {
				held = append(held, r.ID)
			}
		case 2: // release
			if len(held) > 0 {
				i := rng.Intn(len(held))
				if err := p.Release(held[i]); err != nil {
					t.Fatalf("release held id: %v", err)
				}
				held = append(held[:i], held[i+1:]...)
			}
		case 3: // resize
			if len(held) > 0 {
				i := rng.Intn(len(held))
				_ = p.Resize(held[i], Nodes(float64(rng.Intn(15))))
			}
		}
		// Invariant check at every boundary.
		for _, r := range p.Reservations() {
			for _, edge := range []time.Time{r.Start, r.End.Add(-time.Nanosecond)} {
				if use := p.InUse(edge); !use.FitsIn(p.Online()) {
					t.Fatalf("step %d: oversubscribed at %v: in use %v > online %v",
						step, edge, use, p.Online())
				}
			}
		}
	}
}

func TestDomain(t *testing.T) {
	d := NewDomain("site-a")
	if d.Name() != "site-a" {
		t.Errorf("Name = %q", d.Name())
	}
	d.AddPool(NewPool("cpu", Nodes(26)))
	d.AddPool(NewPool("storage", Capacity{DiskGB: 500}))
	p, err := d.Pool("cpu")
	if err != nil || p.Name() != "cpu" {
		t.Fatalf("Pool(cpu) = %v, %v", p, err)
	}
	if _, err := d.Pool("gone"); !errors.Is(err, ErrUnknownPool) {
		t.Errorf("Pool(gone) err = %v", err)
	}
	pools := d.Pools()
	if len(pools) != 2 || pools[0].Name() != "cpu" || pools[1].Name() != "storage" {
		t.Fatalf("Pools = %v", pools)
	}
	want := Capacity{CPU: 26, DiskGB: 500}
	if got := d.TotalCapacity(); !got.Equal(want) {
		t.Errorf("TotalCapacity = %v, want %v", got, want)
	}
}
