package resource

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Reservation errors.
var (
	// ErrInsufficientCapacity is returned when a requested reservation
	// does not fit in the pool over the requested interval.
	ErrInsufficientCapacity = errors.New("resource: insufficient capacity")
	// ErrUnknownReservation is returned for operations on a reservation
	// ID the pool does not hold.
	ErrUnknownReservation = errors.New("resource: unknown reservation")
	// ErrBadInterval is returned when a reservation interval is empty or
	// inverted.
	ErrBadInterval = errors.New("resource: end must be after start")
)

// ReservationID identifies a reservation within a pool.
type ReservationID string

// Reservation is a claim of Amount capacity over [Start, End).
type Reservation struct {
	ID     ReservationID
	Amount Capacity
	Start  time.Time
	End    time.Time
	// Tag is opaque caller data (e.g. the SLA ID the reservation backs).
	Tag string
}

// Pool hands out interval reservations against a fixed total capacity. All
// methods are safe for concurrent use.
//
// A Pool enforces the core invariant the adaptation algorithm relies on: at
// every instant, the sum of overlapping reservations never exceeds the
// pool's total capacity (plus any capacity marked failed — see SetOffline).
type Pool struct {
	name string

	mu      sync.Mutex
	total   Capacity
	offline Capacity // capacity currently inaccessible (failures)
	nextID  int
	res     map[ReservationID]*Reservation
}

// NewPool returns a pool named name with the given total capacity.
func NewPool(name string, total Capacity) *Pool {
	return &Pool{
		name:  name,
		total: total,
		res:   make(map[ReservationID]*Reservation),
	}
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Total returns the pool's configured capacity (ignoring failures).
func (p *Pool) Total() Capacity {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Online returns the capacity currently serviceable: total minus offline.
func (p *Pool) Online() Capacity {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total.Sub(p.offline)
}

// SetOffline marks the given capacity as inaccessible (e.g. the three
// processor nodes that fail at t2 in the paper's §5.6 example). Existing
// reservations are not cancelled — the pool may be transiently
// oversubscribed relative to online capacity, which is exactly the
// condition the AQoS adaptation layer detects and repairs. Passing the
// zero Capacity restores full capacity.
func (p *Pool) SetOffline(c Capacity) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.offline = c
}

// Reserve claims amount over [start, end). It fails with
// ErrInsufficientCapacity if the claim would oversubscribe the pool's
// online capacity at any instant of the interval.
func (p *Pool) Reserve(amount Capacity, start, end time.Time, tag string) (*Reservation, error) {
	if !end.After(start) {
		return nil, ErrBadInterval
	}
	if !amount.IsNonNegative() {
		return nil, fmt.Errorf("resource: negative reservation amount %v", amount)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	avail := p.minAvailableLocked(start, end)
	if !amount.FitsIn(avail) {
		return nil, fmt.Errorf("%w: pool %q has %v available over [%s, %s), need %v",
			ErrInsufficientCapacity, p.name, avail,
			start.Format(time.RFC3339), end.Format(time.RFC3339), amount)
	}
	p.nextID++
	r := &Reservation{
		ID:     ReservationID(fmt.Sprintf("%s-%d", p.name, p.nextID)),
		Amount: amount,
		Start:  start,
		End:    end,
		Tag:    tag,
	}
	p.res[r.ID] = r
	return cloneRes(r), nil
}

// Release cancels the reservation with the given ID.
func (p *Pool) Release(id ReservationID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.res[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReservation, id)
	}
	delete(p.res, id)
	return nil
}

// Resize changes the amount of an existing reservation, keeping its
// interval. Shrinking always succeeds; growing is admission-checked against
// the rest of the pool.
func (p *Pool) Resize(id ReservationID, amount Capacity) error {
	if !amount.IsNonNegative() {
		return fmt.Errorf("resource: negative reservation amount %v", amount)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.res[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReservation, id)
	}
	old := r.Amount
	r.Amount = Capacity{} // exclude self from the admission check
	avail := p.minAvailableLocked(r.Start, r.End)
	if !amount.FitsIn(avail) {
		r.Amount = old
		return fmt.Errorf("%w: resize %s to %v, only %v available",
			ErrInsufficientCapacity, id, amount, avail)
	}
	r.Amount = amount
	return nil
}

// Extend moves a reservation's end time. Shortening always succeeds;
// lengthening is admission-checked over the added interval.
func (p *Pool) Extend(id ReservationID, end time.Time) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.res[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownReservation, id)
	}
	if !end.After(r.Start) {
		return ErrBadInterval
	}
	if end.After(r.End) {
		amount, oldEnd := r.Amount, r.End
		r.Amount = Capacity{}
		avail := p.minAvailableLocked(oldEnd, end)
		r.Amount = amount
		if !amount.FitsIn(avail) {
			return fmt.Errorf("%w: extend %s to %s", ErrInsufficientCapacity, id, end.Format(time.RFC3339))
		}
	}
	r.End = end
	return nil
}

// Get returns a copy of the reservation with the given ID.
func (p *Pool) Get(id ReservationID) (*Reservation, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.res[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownReservation, id)
	}
	return cloneRes(r), nil
}

// Reservations returns copies of all reservations, ordered by ID.
func (p *Pool) Reservations() []*Reservation {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Reservation, 0, len(p.res))
	for _, r := range p.res {
		out = append(out, cloneRes(r))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InUse returns the capacity reserved at instant t.
func (p *Pool) InUse(t time.Time) Capacity {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUseLocked(t)
}

// Available returns the online capacity not reserved at instant t. The
// result is clamped at zero: when failures make the pool transiently
// oversubscribed the available capacity is zero, not negative.
func (p *Pool) Available(t time.Time) Capacity {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total.Sub(p.offline).Sub(p.inUseLocked(t)).ClampMin(Capacity{})
}

// Oversubscription returns how far reservations at instant t exceed online
// capacity (zero when the pool is healthy). This is the shortfall the
// adaptation algorithm must cover from the adaptive pool.
func (p *Pool) Oversubscription(t time.Time) Capacity {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUseLocked(t).Sub(p.total.Sub(p.offline)).ClampMin(Capacity{})
}

// MinAvailable returns the minimum available capacity over [start, end),
// i.e. the largest amount a new reservation spanning that interval could
// claim.
func (p *Pool) MinAvailable(start, end time.Time) Capacity {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.minAvailableLocked(start, end)
}

// GC removes reservations that ended at or before now, returning how many
// were collected.
func (p *Pool) GC(now time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for id, r := range p.res {
		if !r.End.After(now) {
			delete(p.res, id)
			n++
		}
	}
	return n
}

func (p *Pool) inUseLocked(t time.Time) Capacity {
	var used Capacity
	for _, r := range p.res {
		if !r.Start.After(t) && r.End.After(t) {
			used = used.Add(r.Amount)
		}
	}
	return used
}

// minAvailableLocked evaluates availability at every reservation boundary
// inside [start, end) plus start itself — availability is piecewise
// constant between boundaries, so this is exact.
func (p *Pool) minAvailableLocked(start, end time.Time) Capacity {
	online := p.total.Sub(p.offline)
	min := online.Sub(p.inUseLocked(start)).ClampMin(Capacity{})
	for _, r := range p.res {
		for _, edge := range [2]time.Time{r.Start, r.End} {
			if edge.After(start) && edge.Before(end) {
				avail := online.Sub(p.inUseLocked(edge)).ClampMin(Capacity{})
				min = min.Min(avail)
			}
		}
	}
	return min
}

func cloneRes(r *Reservation) *Reservation {
	c := *r
	return &c
}
