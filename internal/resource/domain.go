package resource

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknownPool is returned for lookups of pools not registered in a
// domain.
var ErrUnknownPool = errors.New("resource: unknown pool")

// Domain is an administrative domain (paper §2.1: "a domain can be defined
// via an IP mask or as an administrative domain … and contains a set of
// services over which the RM has administrative and configuration
// control"). It groups named pools — e.g. the site-A SGI machine's
// processor pool and a storage pool — under one resource manager.
type Domain struct {
	name string

	mu    sync.Mutex
	pools map[string]*Pool
}

// NewDomain returns an empty domain named name.
func NewDomain(name string) *Domain {
	return &Domain{name: name, pools: make(map[string]*Pool)}
}

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// AddPool registers a pool. It replaces any existing pool with the same
// name.
func (d *Domain) AddPool(p *Pool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pools[p.Name()] = p
}

// Pool returns the pool with the given name.
func (d *Domain) Pool(name string) (*Pool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pools[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q in domain %q", ErrUnknownPool, name, d.name)
	}
	return p, nil
}

// Pools returns all pools ordered by name.
func (d *Domain) Pools() []*Pool {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Pool, 0, len(d.pools))
	for _, p := range d.pools {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// TotalCapacity sums the configured capacity of every pool in the domain.
func (d *Domain) TotalCapacity() Capacity {
	var sum Capacity
	for _, p := range d.Pools() {
		sum = sum.Add(p.Total())
	}
	return sum
}
