package registry

import (
	"testing"
	"time"

	"gqosm/internal/clockx"
)

// TestGenerationCountsMutations pins the contract discovery caches rely
// on: Generation() is monotonic, bumps on every successful mutation
// (Register, Deregister, Renew, a Sweep that removed something), and
// stays put on reads and failed or no-op operations.
func TestGenerationCountsMutations(t *testing.T) {
	start := time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	clock := clockx.NewManual(start)
	r := New(clock)

	last := r.Generation()
	if last != 0 {
		t.Fatalf("fresh registry generation = %d, want 0", last)
	}
	expectBump := func(op string, want bool) {
		t.Helper()
		g := r.Generation()
		if want && g <= last {
			t.Errorf("%s: generation %d, want > %d", op, g, last)
		}
		if !want && g != last {
			t.Errorf("%s: generation %d, want unchanged %d", op, g, last)
		}
		if g < last {
			t.Errorf("%s: generation went backwards (%d < %d)", op, g, last)
		}
		last = g
	}

	key, err := r.Register(Service{Name: "simulation", Provider: "site-a"})
	if err != nil {
		t.Fatal(err)
	}
	expectBump("Register", true)

	if _, err := r.Find(Query{NamePattern: "simulation"}); err != nil {
		t.Fatal(err)
	}
	expectBump("Find", false)

	if err := r.Renew(key, start.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	expectBump("Renew", true)

	if err := r.Renew("svc-9999", start.Add(time.Hour)); err == nil {
		t.Fatal("Renew of unknown key succeeded")
	}
	expectBump("failed Renew", false)

	if n := r.Sweep(); n != 0 {
		t.Fatalf("Sweep removed %d, want 0", n)
	}
	expectBump("no-op Sweep", false)

	clock.Advance(2 * time.Hour) // past the renewed lease
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d, want 1", n)
	}
	expectBump("Sweep", true)

	key2, err := r.Register(Service{Name: "simulation", Provider: "site-b"})
	if err != nil {
		t.Fatal(err)
	}
	expectBump("Register", true)
	if err := r.Deregister(key2); err != nil {
		t.Fatal(err)
	}
	expectBump("Deregister", true)

	if err := r.Deregister(key2); err == nil {
		t.Fatal("Deregister of removed key succeeded")
	}
	expectBump("failed Deregister", false)
}
