// Package registry implements a UDDIe-style service registry — the
// extended UDDI of ShaikhAli et al. the paper's discovery phase relies on
// (§2.1: "service users can now also specify particular service
// properties, such as QoS parameters, with which services are registered,
// and based on which services can subsequently be discovered").
//
// Services register with a *property bag* of typed QoS properties and a
// lease; discovery queries combine a name pattern with property
// constraints (UDDIe's qualifier-based search).
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gqosm/internal/clockx"
)

// Registry errors.
var (
	// ErrNotFound is returned for unknown service keys.
	ErrNotFound = errors.New("registry: service not found")
	// ErrExpired is returned when operating on a service whose lease
	// lapsed.
	ErrExpired = errors.New("registry: lease expired")
	// ErrBadProperty is returned for malformed properties or filters.
	ErrBadProperty = errors.New("registry: bad property")
)

// PropertyType discriminates property values, as UDDIe distinguishes
// numeric from string property qualifiers.
type PropertyType int

// Property types.
const (
	String PropertyType = iota + 1
	Number
)

// Property is one entry of a service's property bag.
type Property struct {
	Name string
	Type PropertyType
	Str  string
	Num  float64
}

// StrProp returns a string property.
func StrProp(name, value string) Property {
	return Property{Name: name, Type: String, Str: value}
}

// NumProp returns a numeric property.
func NumProp(name string, value float64) Property {
	return Property{Name: name, Type: Number, Num: value}
}

// Value renders the property value as a string (for XML transport).
func (p Property) Value() string {
	if p.Type == Number {
		return strconv.FormatFloat(p.Num, 'g', -1, 64)
	}
	return p.Str
}

// Key identifies a registered service (UDDI serviceKey).
type Key string

// Service is a registry entry: a Grid service advertised with its QoS
// capabilities.
type Service struct {
	Key         Key
	Name        string
	Provider    string
	Description string
	// AccessPoint is the service's network address (the "network
	// addressable" software entity of §1).
	AccessPoint string
	Properties  []Property
	// LeaseUntil is when the registration lapses; zero means no lease.
	LeaseUntil time.Time
}

// Property returns the named property.
func (s *Service) Property(name string) (Property, bool) {
	for _, p := range s.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return Property{}, false
}

func (s *Service) clone() *Service {
	c := *s
	c.Properties = append([]Property(nil), s.Properties...)
	return &c
}

// Op is a comparison operator in a property filter.
type Op string

// Filter operators.
const (
	OpEq Op = "eq"
	OpNe Op = "ne"
	OpGt Op = "gt"
	OpGe Op = "ge"
	OpLt Op = "lt"
	OpLe Op = "le"
)

// Filter is one property constraint of a discovery query.
type Filter struct {
	Name  string
	Op    Op
	Value string // parsed as a number when the property is numeric
}

// Matches reports whether the property satisfies the filter.
func (f Filter) Matches(p Property) (bool, error) {
	if p.Type == Number {
		want, err := strconv.ParseFloat(strings.TrimSpace(f.Value), 64)
		if err != nil {
			return false, fmt.Errorf("%w: filter %s compares numeric property with %q",
				ErrBadProperty, f.Name, f.Value)
		}
		switch f.Op {
		case OpEq:
			return p.Num == want, nil
		case OpNe:
			return p.Num != want, nil
		case OpGt:
			return p.Num > want, nil
		case OpGe:
			return p.Num >= want, nil
		case OpLt:
			return p.Num < want, nil
		case OpLe:
			return p.Num <= want, nil
		}
		return false, fmt.Errorf("%w: unknown op %q", ErrBadProperty, f.Op)
	}
	switch f.Op {
	case OpEq:
		return p.Str == f.Value, nil
	case OpNe:
		return p.Str != f.Value, nil
	case OpGt:
		return p.Str > f.Value, nil
	case OpGe:
		return p.Str >= f.Value, nil
	case OpLt:
		return p.Str < f.Value, nil
	case OpLe:
		return p.Str <= f.Value, nil
	}
	return false, fmt.Errorf("%w: unknown op %q", ErrBadProperty, f.Op)
}

// Query is a discovery request: an optional case-insensitive name
// substring plus property constraints, all of which must hold.
type Query struct {
	NamePattern string
	Filters     []Filter
	// MaxRows caps the result set (0 = unlimited), as UDDI's maxRows.
	MaxRows int
}

// Registry is the in-process registry. It is safe for concurrent use.
type Registry struct {
	clock clockx.Clock

	// gen counts mutations (Register, Deregister, Renew, and Sweeps that
	// removed something). Readers that cache Find results key their
	// entries on it: an unchanged generation means the registered set —
	// including every lease — is exactly as it was. Lease *expiry* is
	// time-based and does not bump the generation; cache layers must
	// check their selected service's LeaseUntil themselves.
	gen atomic.Uint64

	// epoch identifies this registry *instance*. Generations restart
	// from zero on every restart, so a restarted registry can reach a
	// generation value a cache stamped before the crash — the epoch is
	// drawn from a process-wide counter precisely so that can never
	// validate: a cache entry is current only if both its epoch and its
	// generation match.
	epoch uint64

	mu       sync.Mutex
	nextID   int
	services map[Key]*Service
}

// epochSeq hands every registry instance in the process a distinct
// epoch; it never repeats within a process lifetime.
var epochSeq atomic.Uint64

// New returns an empty registry using the given clock for leases.
func New(clock clockx.Clock) *Registry {
	return &Registry{clock: clock, epoch: epochSeq.Add(1), services: make(map[Key]*Service)}
}

// Register adds a service and returns its assigned key. A zero
// LeaseUntil means the registration does not expire.
func (r *Registry) Register(s Service) (Key, error) {
	if s.Name == "" {
		return "", errors.New("registry: service name required")
	}
	for _, p := range s.Properties {
		if p.Name == "" || (p.Type != String && p.Type != Number) {
			return "", fmt.Errorf("%w: %+v", ErrBadProperty, p)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	s.Key = Key(fmt.Sprintf("svc-%04d", r.nextID))
	r.services[s.Key] = s.clone()
	r.gen.Add(1)
	return s.Key, nil
}

// Deregister removes a service.
func (r *Registry) Deregister(k Key) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.services[k]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	delete(r.services, k)
	r.gen.Add(1)
	return nil
}

// Renew extends a service's lease.
func (r *Registry) Renew(k Key, until time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.services[k]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	s.LeaseUntil = until
	r.gen.Add(1)
	return nil
}

// Get returns a copy of the service if its lease is current.
func (r *Registry) Get(k Key) (*Service, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.services[k]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, k)
	}
	if r.expiredLocked(s) {
		return nil, fmt.Errorf("%w: %s", ErrExpired, k)
	}
	return s.clone(), nil
}

// Find runs a discovery query, returning matching services (leases
// current) sorted by key. A filter naming a property a service lacks
// excludes that service. Malformed filters fail the whole query.
func (r *Registry) Find(q Query) ([]*Service, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Service
	pattern := strings.ToLower(q.NamePattern)
	for _, s := range r.services {
		if r.expiredLocked(s) {
			continue
		}
		if pattern != "" && !strings.Contains(strings.ToLower(s.Name), pattern) {
			continue
		}
		ok, err := matchFilters(s, q.Filters)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, s.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if q.MaxRows > 0 && len(out) > q.MaxRows {
		out = out[:q.MaxRows]
	}
	return out, nil
}

func matchFilters(s *Service, filters []Filter) (bool, error) {
	for _, f := range filters {
		p, ok := s.Property(f.Name)
		if !ok {
			return false, nil
		}
		match, err := f.Matches(p)
		if err != nil {
			return false, err
		}
		if !match {
			return false, nil
		}
	}
	return true, nil
}

// Sweep removes expired registrations and reports how many were removed.
func (r *Registry) Sweep() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for k, s := range r.services {
		if r.expiredLocked(s) {
			delete(r.services, k)
			n++
		}
	}
	if n > 0 {
		r.gen.Add(1)
	}
	return n
}

// Generation returns the registry's mutation counter. It increases on
// every Register, Deregister and Renew, and on Sweeps that removed at
// least one registration; it never decreases. Two Find calls bracketing
// an unchanged generation observe the same registered set (modulo
// time-based lease expiry — see the gen field).
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// Epoch identifies this registry instance. Two registries — even one
// restarted in place of another — never share an epoch, so a cache that
// stamps entries with (epoch, generation) can never validate a pre-crash
// entry against a post-crash registry whose generation counter happens
// to have reached the same value.
func (r *Registry) Epoch() uint64 { return r.epoch }

// Len reports the number of registrations (including expired ones not yet
// swept).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.services)
}

func (r *Registry) expiredLocked(s *Service) bool {
	return !s.LeaseUntil.IsZero() && !r.clock.Now().Before(s.LeaseUntil)
}
