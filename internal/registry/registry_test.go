package registry

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/soapx"
)

var t0 = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)

// mathSolver is a §2.1-style service advertised with QoS properties.
func mathSolver() Service {
	return Service{
		Name:        "MatrixSolver",
		Provider:    "site-a",
		Description: "dense linear algebra",
		AccessPoint: "http://site-a.example/solver",
		Properties: []Property{
			NumProp("cpu-nodes", 26),
			NumProp("memory-mb", 10240),
			NumProp("bandwidth-mbps", 622),
			StrProp("os", "linux"),
			StrProp("qos-class", "guaranteed"),
		},
	}
}

func TestRegisterGetDeregister(t *testing.T) {
	r := New(clockx.NewManual(t0))
	key, err := r.Register(mathSolver())
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if key == "" {
		t.Fatal("empty key")
	}
	got, err := r.Get(key)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Name != "MatrixSolver" || got.Key != key {
		t.Errorf("Get = %+v", got)
	}
	// Copies: caller mutation must not leak.
	got.Properties[0] = NumProp("cpu-nodes", 1)
	again, _ := r.Get(key)
	if p, _ := again.Property("cpu-nodes"); p.Num != 26 {
		t.Error("Get leaked internal service")
	}
	if err := r.Deregister(key); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after deregister err = %v", err)
	}
	if err := r.Deregister(key); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Deregister err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New(clockx.NewManual(t0))
	if _, err := r.Register(Service{}); err == nil {
		t.Error("nameless service accepted")
	}
	bad := mathSolver()
	bad.Properties = append(bad.Properties, Property{Name: ""})
	if _, err := r.Register(bad); !errors.Is(err, ErrBadProperty) {
		t.Errorf("bad property err = %v", err)
	}
}

func TestFindByNameAndProperties(t *testing.T) {
	r := New(clockx.NewManual(t0))
	if _, err := r.Register(mathSolver()); err != nil {
		t.Fatal(err)
	}
	small := mathSolver()
	small.Name = "SmallSolver"
	small.Properties = []Property{NumProp("cpu-nodes", 4), StrProp("os", "linux")}
	if _, err := r.Register(small); err != nil {
		t.Fatal(err)
	}
	viz := Service{Name: "Visualizer", Properties: []Property{StrProp("os", "irix")}}
	if _, err := r.Register(viz); err != nil {
		t.Fatal(err)
	}

	// Name substring, case-insensitive.
	got, err := r.Find(Query{NamePattern: "solver"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Find(solver) = %d services", len(got))
	}

	// Property constraint: the discovery phase's "services with the
	// specified QoS capabilities".
	got, err = r.Find(Query{Filters: []Filter{
		{Name: "cpu-nodes", Op: OpGe, Value: "10"},
		{Name: "os", Op: OpEq, Value: "linux"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "MatrixSolver" {
		t.Fatalf("filtered Find = %v", got)
	}

	// Missing property excludes the service.
	got, err = r.Find(Query{Filters: []Filter{{Name: "gpu", Op: OpEq, Value: "1"}}})
	if err != nil || len(got) != 0 {
		t.Fatalf("Find(gpu) = %v, %v", got, err)
	}

	// MaxRows caps results.
	got, err = r.Find(Query{MaxRows: 1})
	if err != nil || len(got) != 1 {
		t.Fatalf("Find(MaxRows=1) = %d, %v", len(got), err)
	}

	// Malformed numeric filter fails loudly.
	if _, err := r.Find(Query{Filters: []Filter{{Name: "cpu-nodes", Op: OpGe, Value: "many"}}}); !errors.Is(err, ErrBadProperty) {
		t.Errorf("bad filter err = %v", err)
	}
	if _, err := r.Find(Query{Filters: []Filter{{Name: "cpu-nodes", Op: "between", Value: "3"}}}); !errors.Is(err, ErrBadProperty) {
		t.Errorf("bad op err = %v", err)
	}
	if _, err := r.Find(Query{Filters: []Filter{{Name: "os", Op: "between", Value: "x"}}}); !errors.Is(err, ErrBadProperty) {
		t.Errorf("bad string op err = %v", err)
	}
}

func TestFilterOperators(t *testing.T) {
	num := NumProp("x", 5)
	tests := []struct {
		op    Op
		value string
		want  bool
	}{
		{OpEq, "5", true}, {OpEq, "6", false},
		{OpNe, "6", true}, {OpNe, "5", false},
		{OpGt, "4", true}, {OpGt, "5", false},
		{OpGe, "5", true}, {OpGe, "6", false},
		{OpLt, "6", true}, {OpLt, "5", false},
		{OpLe, "5", true}, {OpLe, "4", false},
	}
	for _, tt := range tests {
		got, err := Filter{Name: "x", Op: tt.op, Value: tt.value}.Matches(num)
		if err != nil || got != tt.want {
			t.Errorf("num %s %s = %v, %v; want %v", tt.op, tt.value, got, err, tt.want)
		}
	}
	str := StrProp("s", "mm")
	strTests := []struct {
		op    Op
		value string
		want  bool
	}{
		{OpEq, "mm", true}, {OpNe, "mm", false},
		{OpGt, "aa", true}, {OpLt, "zz", true},
		{OpGe, "mm", true}, {OpLe, "mm", true},
	}
	for _, tt := range strTests {
		got, err := Filter{Name: "s", Op: tt.op, Value: tt.value}.Matches(str)
		if err != nil || got != tt.want {
			t.Errorf("str %s %s = %v, %v; want %v", tt.op, tt.value, got, err, tt.want)
		}
	}
}

func TestLeaseExpiry(t *testing.T) {
	clock := clockx.NewManual(t0)
	r := New(clock)
	s := mathSolver()
	s.LeaseUntil = t0.Add(time.Hour)
	key, err := r.Register(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(key); err != nil {
		t.Fatalf("Get before expiry: %v", err)
	}
	clock.Advance(2 * time.Hour)
	if _, err := r.Get(key); !errors.Is(err, ErrExpired) {
		t.Errorf("Get after expiry err = %v", err)
	}
	found, err := r.Find(Query{})
	if err != nil || len(found) != 0 {
		t.Errorf("expired service discoverable: %v", found)
	}
	// Renew revives it.
	if err := r.Renew(key, clock.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(key); err != nil {
		t.Errorf("Get after renew: %v", err)
	}
	// Sweep removes expired entries.
	clock.Advance(3 * time.Hour)
	if n := r.Sweep(); n != 1 {
		t.Errorf("Sweep = %d, want 1", n)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d", r.Len())
	}
	if err := r.Renew("ghost", t0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Renew ghost err = %v", err)
	}
}

func TestSOAPTransportRoundTrip(t *testing.T) {
	clock := clockx.NewManual(t0)
	r := New(clock)
	mux := soapx.NewMux()
	r.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := NewClient(srv.URL)
	s := mathSolver()
	s.LeaseUntil = t0.Add(24 * time.Hour)
	key, err := c.Register(s)
	if err != nil {
		t.Fatalf("remote Register: %v", err)
	}
	if key == "" {
		t.Fatal("empty remote key")
	}

	found, err := c.Find(Query{
		NamePattern: "matrix",
		Filters:     []Filter{{Name: "cpu-nodes", Op: OpGe, Value: "10"}},
	})
	if err != nil {
		t.Fatalf("remote Find: %v", err)
	}
	if len(found) != 1 || found[0].Key != key {
		t.Fatalf("remote Find = %+v", found)
	}
	if p, ok := found[0].Property("cpu-nodes"); !ok || p.Type != Number || p.Num != 26 {
		t.Errorf("numeric property round trip = %+v", p)
	}
	if p, ok := found[0].Property("os"); !ok || p.Str != "linux" {
		t.Errorf("string property round trip = %+v", p)
	}
	if found[0].LeaseUntil.IsZero() {
		t.Error("lease lost in transport")
	}

	if err := c.Deregister(key); err != nil {
		t.Fatalf("remote Deregister: %v", err)
	}
	found, err = c.Find(Query{})
	if err != nil || len(found) != 0 {
		t.Fatalf("Find after deregister = %v, %v", found, err)
	}

	// Server-side errors surface as faults.
	if err := c.Deregister("ghost"); err == nil {
		t.Error("remote Deregister(ghost) succeeded")
	}
	var fault *soapx.Fault
	if err := c.Deregister("ghost"); !errors.As(err, &fault) {
		t.Errorf("err = %v, want *soapx.Fault", err)
	}
}

func TestPropertyValue(t *testing.T) {
	if got := NumProp("x", 9.5).Value(); got != "9.5" {
		t.Errorf("NumProp Value = %q", got)
	}
	if got := StrProp("x", "abc").Value(); got != "abc" {
		t.Errorf("StrProp Value = %q", got)
	}
}

func TestServiceXMLHelpers(t *testing.T) {
	s := mathSolver()
	s.LeaseUntil = t0.Add(time.Hour)
	x := ServiceToXML(&s)
	back, err := ServiceFromXML(x)
	if err != nil {
		t.Fatalf("ServiceFromXML: %v", err)
	}
	if back.Name != s.Name || len(back.Properties) != len(s.Properties) {
		t.Errorf("round trip = %+v", back)
	}
	if !back.LeaseUntil.Equal(s.LeaseUntil) {
		t.Errorf("lease = %v, want %v", back.LeaseUntil, s.LeaseUntil)
	}
	// Malformed wire forms are rejected.
	bad := x
	bad.Properties = []PropertyXML{{Name: "n", Type: "number", Value: "many"}}
	if _, err := ServiceFromXML(bad); err == nil {
		t.Error("bad numeric property accepted")
	}
	bad = x
	bad.Properties = []PropertyXML{{Name: "n", Type: "matrix", Value: "x"}}
	if _, err := ServiceFromXML(bad); err == nil {
		t.Error("unknown property type accepted")
	}
	bad = x
	bad.LeaseUntil = "not-a-time"
	if _, err := ServiceFromXML(bad); err == nil {
		t.Error("bad lease accepted")
	}
}
