package registry

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/soapx"
)

var regT0 = time.Date(2003, time.June, 16, 9, 0, 0, 0, time.UTC)

func demoService() Service {
	return Service{
		Name:        "simulation",
		Provider:    "site-a",
		Description: "CFD solver",
		AccessPoint: "http://site-a.example/soap",
		Properties: []Property{
			NumProp("cpu-nodes", 16),
			NumProp("bandwidth-mbps", 100),
			StrProp("arch", "mips"),
		},
		LeaseUntil: regT0.Add(24 * time.Hour),
	}
}

func TestServiceXMLRoundTrip(t *testing.T) {
	s := demoService()
	s.Key = "key-1"
	back, err := ServiceFromXML(ServiceToXML(&s))
	if err != nil {
		t.Fatal(err)
	}
	if back.Key != s.Key || back.Name != s.Name || back.Provider != s.Provider ||
		back.Description != s.Description || back.AccessPoint != s.AccessPoint {
		t.Fatalf("identity fields mangled: %+v", back)
	}
	if !back.LeaseUntil.Equal(s.LeaseUntil) {
		t.Fatalf("lease %v, want %v", back.LeaseUntil, s.LeaseUntil)
	}
	if len(back.Properties) != 3 {
		t.Fatalf("%d properties, want 3", len(back.Properties))
	}
	cpu, ok := back.Property("cpu-nodes")
	if !ok || cpu.Type != Number || cpu.Num != 16 {
		t.Fatalf("cpu-nodes = %+v", cpu)
	}
	arch, ok := back.Property("arch")
	if !ok || arch.Type != String || arch.Str != "mips" {
		t.Fatalf("arch = %+v", arch)
	}
}

func TestServiceFromXMLErrors(t *testing.T) {
	for name, x := range map[string]ServiceXML{
		"bad-number": {Name: "s", Properties: []PropertyXML{{Name: "n", Type: "number", Value: "not-a-number"}}},
		"bad-type":   {Name: "s", Properties: []PropertyXML{{Name: "n", Type: "boolean", Value: "true"}}},
		"bad-lease":  {Name: "s", LeaseUntil: "yesterday"},
	} {
		if _, err := ServiceFromXML(x); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// newTransportPair mounts a registry on a SOAP mux behind an HTTP test
// server and returns it with a typed client pointed at it.
func newTransportPair(t *testing.T) (*Registry, *Client) {
	t.Helper()
	reg := New(clockx.NewManual(regT0))
	mux := soapx.NewMux()
	reg.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return reg, NewClient(srv.URL)
}

func TestClientRegisterFindDeregister(t *testing.T) {
	reg, client := newTransportPair(t)

	key, err := client.Register(demoService())
	if err != nil {
		t.Fatal(err)
	}
	if key == "" {
		t.Fatal("empty service key")
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d services, want 1", reg.Len())
	}

	// Property-qualified discovery (the UDDIe propertyBag search).
	matches, err := client.Find(Query{
		NamePattern: "simulation",
		Filters:     []Filter{{Name: "cpu-nodes", Op: OpGe, Value: "8"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Key != key {
		t.Fatalf("matches = %+v", matches)
	}
	if cpu, ok := matches[0].Property("cpu-nodes"); !ok || cpu.Num != 16 {
		t.Fatalf("cpu-nodes lost in transit: %+v", matches[0].Properties)
	}

	// A filter excluding the service yields no rows.
	none, err := client.Find(Query{
		NamePattern: "simulation",
		Filters:     []Filter{{Name: "cpu-nodes", Op: OpGe, Value: "64"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("expected no matches, got %+v", none)
	}

	if err := client.Deregister(key); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry still holds %d services", reg.Len())
	}
}

func TestClientErrorsCrossTheWire(t *testing.T) {
	_, client := newTransportPair(t)

	// Registering a nameless service fails server-side; the SOAP fault
	// must surface as a client error.
	if _, err := client.Register(Service{Provider: "site-a"}); err == nil {
		t.Fatal("nameless registration succeeded")
	}

	// Deregistering an unknown key is a fault too.
	err := client.Deregister("no-such-key")
	if err == nil {
		t.Fatal("deregister of unknown key succeeded")
	}
	if !strings.Contains(err.Error(), "no-such-key") {
		t.Fatalf("fault does not identify the key: %v", err)
	}

	// A malformed filter op is rejected when evaluated against a
	// candidate service.
	if _, err := client.Register(Service{Name: "x", Properties: []Property{NumProp("p", 1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Find(Query{
		NamePattern: "x",
		Filters:     []Filter{{Name: "p", Op: Op("~="), Value: "1"}},
	}); err == nil {
		t.Fatal("bad filter op accepted")
	}
}
