package registry

import (
	"encoding/xml"
	"fmt"
	"time"

	"gqosm/internal/soapx"
)

// This file provides the registry's SOAP-over-HTTP transport: the UDDIe
// server side mounted on a soapx.Mux and a typed client, exchanging the
// XML documents below (simplified save_service / find_service shapes).

// ServiceXML is the wire form of a Service.
type ServiceXML struct {
	XMLName     xml.Name      `xml:"Service"`
	Key         string        `xml:"ServiceKey,attr,omitempty"`
	Name        string        `xml:"Name"`
	Provider    string        `xml:"Provider,omitempty"`
	Description string        `xml:"Description,omitempty"`
	AccessPoint string        `xml:"AccessPoint,omitempty"`
	Properties  []PropertyXML `xml:"PropertyBag>Property"`
	LeaseUntil  string        `xml:"LeaseUntil,omitempty"` // RFC 3339
}

// PropertyXML is the wire form of a Property.
type PropertyXML struct {
	Name  string `xml:"name,attr"`
	Type  string `xml:"type,attr"` // "string" | "number"
	Value string `xml:",chardata"`
}

// SaveServiceXML is the registration request.
type SaveServiceXML struct {
	XMLName xml.Name   `xml:"save_service"`
	Service ServiceXML `xml:"Service"`
}

// ServiceKeyXML is the registration response / lookup request.
type ServiceKeyXML struct {
	XMLName xml.Name `xml:"serviceKey"`
	Key     string   `xml:"Key"`
}

// FindServiceXML is the discovery request (UDDIe find_service with the
// propertyBag qualifier extension).
type FindServiceXML struct {
	XMLName     xml.Name    `xml:"find_service"`
	NamePattern string      `xml:"Name,omitempty"`
	MaxRows     int         `xml:"MaxRows,omitempty"`
	Filters     []FilterXML `xml:"PropertyFilter"`
}

// FilterXML is one property constraint on the wire.
type FilterXML struct {
	Name  string `xml:"name,attr"`
	Op    string `xml:"op,attr"`
	Value string `xml:",chardata"`
}

// ServiceListXML is the discovery response — "the UDDIe registry sends a
// list of matching services (if any) to the AQoS" (§2.1).
type ServiceListXML struct {
	XMLName  xml.Name     `xml:"serviceList"`
	Services []ServiceXML `xml:"Service"`
}

// DeleteServiceXML is the deregistration request.
type DeleteServiceXML struct {
	XMLName xml.Name `xml:"delete_service"`
	Key     string   `xml:"Key"`
}

// AckXML acknowledges requests without a payload.
type AckXML struct {
	XMLName xml.Name `xml:"ack"`
	OK      bool     `xml:"ok"`
}

func toXML(s *Service) ServiceXML {
	out := ServiceXML{
		Key:         string(s.Key),
		Name:        s.Name,
		Provider:    s.Provider,
		Description: s.Description,
		AccessPoint: s.AccessPoint,
	}
	for _, p := range s.Properties {
		typ := "string"
		if p.Type == Number {
			typ = "number"
		}
		out.Properties = append(out.Properties, PropertyXML{Name: p.Name, Type: typ, Value: p.Value()})
	}
	if !s.LeaseUntil.IsZero() {
		out.LeaseUntil = s.LeaseUntil.UTC().Format(time.RFC3339)
	}
	return out
}

func fromXML(x ServiceXML) (Service, error) {
	s := Service{
		Key:         Key(x.Key),
		Name:        x.Name,
		Provider:    x.Provider,
		Description: x.Description,
		AccessPoint: x.AccessPoint,
	}
	for _, p := range x.Properties {
		switch p.Type {
		case "number":
			var num float64
			if _, err := fmt.Sscanf(p.Value, "%g", &num); err != nil {
				return Service{}, fmt.Errorf("%w: numeric property %s=%q", ErrBadProperty, p.Name, p.Value)
			}
			s.Properties = append(s.Properties, NumProp(p.Name, num))
		case "string", "":
			s.Properties = append(s.Properties, StrProp(p.Name, p.Value))
		default:
			return Service{}, fmt.Errorf("%w: unknown type %q", ErrBadProperty, p.Type)
		}
	}
	if x.LeaseUntil != "" {
		t, err := time.Parse(time.RFC3339, x.LeaseUntil)
		if err != nil {
			return Service{}, fmt.Errorf("registry: bad LeaseUntil: %w", err)
		}
		s.LeaseUntil = t
	}
	return s, nil
}

// ServiceToXML converts a Service to its wire form (exported for seed
// files and tooling).
func ServiceToXML(s *Service) ServiceXML { return toXML(s) }

// ServiceFromXML converts a wire-form service back (exported for seed
// files and tooling).
func ServiceFromXML(x ServiceXML) (Service, error) { return fromXML(x) }

// Mount installs the registry's SOAP handlers (save_service, find_service,
// delete_service) on the mux.
func (r *Registry) Mount(mux *soapx.Mux) {
	mux.Handle("save_service", func(body []byte) (any, error) {
		var req SaveServiceXML
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		svc, err := fromXML(req.Service)
		if err != nil {
			return nil, err
		}
		key, err := r.Register(svc)
		if err != nil {
			return nil, err
		}
		return &ServiceKeyXML{Key: string(key)}, nil
	})
	mux.Handle("find_service", func(body []byte) (any, error) {
		var req FindServiceXML
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		q := Query{NamePattern: req.NamePattern, MaxRows: req.MaxRows}
		for _, f := range req.Filters {
			q.Filters = append(q.Filters, Filter{Name: f.Name, Op: Op(f.Op), Value: f.Value})
		}
		matches, err := r.Find(q)
		if err != nil {
			return nil, err
		}
		resp := &ServiceListXML{}
		for _, s := range matches {
			resp.Services = append(resp.Services, toXML(s))
		}
		return resp, nil
	})
	mux.Handle("delete_service", func(body []byte) (any, error) {
		var req DeleteServiceXML
		if err := xml.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		if err := r.Deregister(Key(req.Key)); err != nil {
			return nil, err
		}
		return &AckXML{OK: true}, nil
	})
}

// Client is a typed SOAP client for a remote registry.
type Client struct {
	SOAP soapx.Client
}

// NewClient returns a client for the registry at endpoint.
func NewClient(endpoint string) *Client {
	return &Client{SOAP: soapx.Client{Endpoint: endpoint}}
}

// Register registers the service remotely and returns its key.
func (c *Client) Register(s Service) (Key, error) {
	var resp ServiceKeyXML
	sx := toXML(&s)
	if err := c.SOAP.Call(&SaveServiceXML{Service: sx}, &resp); err != nil {
		return "", err
	}
	return Key(resp.Key), nil
}

// Find runs a remote discovery query.
func (c *Client) Find(q Query) ([]*Service, error) {
	req := &FindServiceXML{NamePattern: q.NamePattern, MaxRows: q.MaxRows}
	for _, f := range q.Filters {
		req.Filters = append(req.Filters, FilterXML{Name: f.Name, Op: string(f.Op), Value: f.Value})
	}
	var resp ServiceListXML
	if err := c.SOAP.Call(req, &resp); err != nil {
		return nil, err
	}
	var out []*Service
	for _, sx := range resp.Services {
		s, err := fromXML(sx)
		if err != nil {
			return nil, err
		}
		out = append(out, &s)
	}
	return out, nil
}

// Deregister removes a remote registration.
func (c *Client) Deregister(k Key) error {
	var resp AckXML
	return c.SOAP.Call(&DeleteServiceXML{Key: string(k)}, &resp)
}
