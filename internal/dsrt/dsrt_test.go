package dsrt

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func newTestSched(procs int) *Scheduler {
	return New(Config{Processors: procs}, nil)
}

func TestContractValidate(t *testing.T) {
	tests := []struct {
		name    string
		c       Contract
		wantErr bool
	}{
		{"ok pcpt", Contract{Class: PeriodicConstant, Share: 0.5, PeriodMS: 33}, false},
		{"ok full share", Contract{Class: Aperiodic, Share: 1}, false},
		{"zero share", Contract{Class: PeriodicVariable, Share: 0}, true},
		{"over share", Contract{Class: PeriodicVariable, Share: 1.2}, true},
		{"bad class", Contract{Share: 0.5}, true},
		{"negative period", Contract{Class: PeriodicConstant, Share: 0.5, PeriodMS: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.c.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestClassString(t *testing.T) {
	if PeriodicConstant.String() != "PCPT" || PeriodicVariable.String() != "PVPT" ||
		Aperiodic.String() != "APERIODIC" {
		t.Error("class mnemonics wrong")
	}
	if Class(9).String() != "class(9)" {
		t.Error("unknown class String")
	}
}

func TestAdmission(t *testing.T) {
	s := newTestSched(2) // capacity 2.0
	if s.Capacity() != 2.0 {
		t.Fatalf("Capacity = %g", s.Capacity())
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.5}); err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
	}
	if _, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.1}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-admission err = %v", err)
	}
	if got := s.Utilization(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Utilization = %g, want 1", got)
	}
}

func TestUnregisterFreesCapacity(t *testing.T) {
	s := newTestSched(1)
	pid, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.2}); err == nil {
		t.Fatal("expected admission failure")
	}
	if err := s.Unregister(pid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.2}); err != nil {
		t.Fatalf("Register after free: %v", err)
	}
	if err := s.Unregister(pid); !errors.Is(err, ErrUnknownPID) {
		t.Errorf("double Unregister err = %v", err)
	}
}

func TestSetShare(t *testing.T) {
	s := newTestSched(1)
	pid, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.4}); err != nil {
		t.Fatal(err)
	}
	// Can grow up to the free 0.1 plus own 0.5.
	if err := s.SetShare(pid, 0.6); err != nil {
		t.Fatalf("SetShare(0.6): %v", err)
	}
	if err := s.SetShare(pid, 0.7); !errors.Is(err, ErrAdmission) {
		t.Fatalf("SetShare(0.7) err = %v", err)
	}
	p, err := s.Get(pid)
	if err != nil {
		t.Fatal(err)
	}
	if p.Contract.Share != 0.6 {
		t.Errorf("share after failed grow = %g", p.Contract.Share)
	}
	if err := s.SetShare(pid, 0); err == nil {
		t.Error("SetShare(0) accepted")
	}
	if err := s.SetShare(999, 0.1); !errors.Is(err, ErrUnknownPID) {
		t.Errorf("SetShare unknown err = %v", err)
	}
}

func TestPCPTNeverAutoAdjusted(t *testing.T) {
	s := newTestSched(1)
	pid, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.ReportUsage(pid, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := s.Get(pid)
	if p.Contract.Share != 0.5 {
		t.Errorf("PCPT share adjusted to %g", p.Contract.Share)
	}
	if p.Reports != 20 {
		t.Errorf("Reports = %d", p.Reports)
	}
}

func TestSystemInitiatedAdaptationShrinks(t *testing.T) {
	// A PVPT process reserving 0.8 but using only ~0.2 should converge to
	// roughly 0.22 (usage × 1.1 headroom) — "reserve just enough CPU
	// time".
	var (
		mu          sync.Mutex
		adjustments int
	)
	s := New(Config{Processors: 1}, func(pid PID, oldS, newS float64) {
		mu.Lock()
		defer mu.Unlock()
		adjustments++
		if newS >= oldS {
			t.Errorf("adaptation grew share %g -> %g under low usage", oldS, newS)
		}
	})
	pid, err := s.Register(Contract{Class: PeriodicVariable, Share: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.ReportUsage(pid, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := s.Get(pid)
	want := 0.2 * 1.1
	if math.Abs(p.Contract.Share-want) > 0.02 {
		t.Errorf("share converged to %g, want ≈ %g", p.Contract.Share, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if adjustments == 0 {
		t.Error("no adjustment callbacks fired")
	}
}

func TestSystemInitiatedAdaptationGrowsWithinCapacity(t *testing.T) {
	s := newTestSched(1)
	pid, err := s.Register(Contract{Class: Aperiodic, Share: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.ReportUsage(pid, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := s.Get(pid)
	if p.Contract.Share < 0.5 {
		t.Errorf("share %g did not grow toward demand 0.55", p.Contract.Share)
	}
}

func TestAdaptationGrowBlockedByAdmission(t *testing.T) {
	s := newTestSched(1)
	pid, err := s.Register(Contract{Class: PeriodicVariable, Share: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the rest of the processor.
	if _, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.ReportUsage(pid, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := s.Get(pid)
	if p.Contract.Share != 0.1 {
		t.Errorf("share grew to %g despite full capacity", p.Contract.Share)
	}
}

func TestAdaptationFloorsAtMinShare(t *testing.T) {
	s := New(Config{Processors: 1, MinShare: 0.05}, nil)
	pid, err := s.Register(Contract{Class: PeriodicVariable, Share: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := s.ReportUsage(pid, 0); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := s.Get(pid)
	if p.Contract.Share < 0.05-1e-9 {
		t.Errorf("share %g fell below MinShare", p.Contract.Share)
	}
}

func TestReportUsageErrors(t *testing.T) {
	s := newTestSched(1)
	if err := s.ReportUsage(42, 0.1); !errors.Is(err, ErrUnknownPID) {
		t.Errorf("unknown pid err = %v", err)
	}
	pid, _ := s.Register(Contract{Class: Aperiodic, Share: 0.1})
	if err := s.ReportUsage(pid, -0.1); err == nil {
		t.Error("negative usage accepted")
	}
}

func TestProcessesSnapshot(t *testing.T) {
	s := newTestSched(4)
	for i := 0; i < 3; i++ {
		if _, err := s.Register(Contract{Class: PeriodicConstant, Share: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	ps := s.Processes()
	if len(ps) != 3 {
		t.Fatalf("Processes = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].PID >= ps[i].PID {
			t.Fatal("not sorted by PID")
		}
	}
	if _, err := s.Get(999); !errors.Is(err, ErrUnknownPID) {
		t.Errorf("Get unknown err = %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	s := New(Config{}, nil)
	if s.Capacity() != 1.0 {
		t.Errorf("default Capacity = %g, want 1", s.Capacity())
	}
	if s.Utilization() != 0 {
		t.Errorf("empty Utilization = %g", s.Utilization())
	}
}

func TestConcurrentRegisterReport(t *testing.T) {
	s := newTestSched(16)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pid, err := s.Register(Contract{Class: PeriodicVariable, Share: 0.5})
			if err != nil {
				t.Errorf("Register: %v", err)
				return
			}
			for j := 0; j < 20; j++ {
				if err := s.ReportUsage(pid, 0.3); err != nil {
					t.Errorf("ReportUsage: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(s.Processes()); got != 16 {
		t.Fatalf("Processes = %d, want 16", got)
	}
	if s.Reserved() > s.Capacity()+1e-9 {
		t.Fatalf("Reserved %g exceeds capacity %g", s.Reserved(), s.Capacity())
	}
}
