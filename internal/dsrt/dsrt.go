// Package dsrt is a from-scratch stand-in for the Dynamic Soft Real-Time
// (DSRT) CPU scheduler of Chu & Nahrstedt that the paper's prototype uses
// as its computation scheduler (§6: "The developed QoS broker is integrated
// with the Dynamic Soft Real-Time (DSRT) scheduler as the computation (CPU)
// scheduler — which operates in a single processor and multiprocessor
// system").
//
// It reproduces the pieces the G-QoSM broker depends on:
//
//   - CPU service classes based on process usage patterns, with the notion
//     of a *contract* specifying the class and the reserved CPU share;
//   - an admission test keeping the sum of reservations within capacity;
//   - usage-pattern tracking per process; and
//   - *system-initiated adaptation*: as the processing time per period
//     changes, contract parameters are adjusted "to reserve just enough CPU
//     time to execute the required processes" — the resource-manager-level
//     adaptation the AQoS broker tries before its own (§3.2).
package dsrt

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"gqosm/internal/faultx"
	"gqosm/internal/obs"
)

// Class is a DSRT CPU service class, chosen by the usage pattern of the
// process.
type Class int

// CPU service classes.
const (
	// PeriodicConstant (PCPT): periodic process with constant processing
	// time per period; its reservation is never auto-adjusted.
	PeriodicConstant Class = iota + 1
	// PeriodicVariable (PVPT): periodic process whose per-period
	// processing time varies; subject to system-initiated adaptation.
	PeriodicVariable
	// Aperiodic: event-driven process given a statistical share;
	// subject to system-initiated adaptation.
	Aperiodic
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case PeriodicConstant:
		return "PCPT"
	case PeriodicVariable:
		return "PVPT"
	case Aperiodic:
		return "APERIODIC"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// PID identifies a registered process.
type PID int

// Contract specifies the CPU service class "together with a parameter used
// to reserve CPU time" (the reserved fraction of one processor in [0, 1]).
type Contract struct {
	Class Class
	// Share is the reserved fraction of one CPU, 0 < Share ≤ 1.
	Share float64
	// PeriodMS is the nominal scheduling period in milliseconds
	// (informational for PCPT/PVPT).
	PeriodMS float64
}

// Validate checks contract sanity.
func (c Contract) Validate() error {
	if c.Class != PeriodicConstant && c.Class != PeriodicVariable && c.Class != Aperiodic {
		return fmt.Errorf("dsrt: unknown class %d", c.Class)
	}
	if c.Share <= 0 || c.Share > 1 {
		return fmt.Errorf("dsrt: share %g outside (0, 1]", c.Share)
	}
	if c.PeriodMS < 0 {
		return fmt.Errorf("dsrt: negative period %g", c.PeriodMS)
	}
	return nil
}

// Scheduler errors.
var (
	// ErrAdmission is returned when a reservation would exceed capacity.
	ErrAdmission = errors.New("dsrt: admission test failed")
	// ErrUnknownPID is returned for operations on unregistered processes.
	ErrUnknownPID = errors.New("dsrt: unknown pid")
)

// Process is the scheduler's view of one registered process.
type Process struct {
	PID      PID
	Contract Contract
	// AvgUsage is the exponentially-weighted average of reported usage
	// (fraction of one CPU actually consumed).
	AvgUsage float64
	// Reports counts usage reports received.
	Reports int
}

// Config tunes the scheduler.
type Config struct {
	// Processors is the number of CPUs; total reservable capacity is
	// Processors × UtilBound.
	Processors int
	// UtilBound is the admission utilisation bound per processor
	// (default 1.0; soft-real-time schedulers often keep headroom).
	UtilBound float64
	// Alpha is the EWMA weight for usage tracking (default 0.3).
	Alpha float64
	// Headroom is the safety margin system-initiated adaptation keeps
	// above observed usage when shrinking a contract (default 0.1, i.e.
	// reserve 110% of the observed average).
	Headroom float64
	// MinShare floors auto-adjusted contracts (default 0.01).
	MinShare float64
}

func (c Config) withDefaults() Config {
	if c.Processors <= 0 {
		c.Processors = 1
	}
	if c.UtilBound <= 0 {
		c.UtilBound = 1.0
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Headroom <= 0 {
		c.Headroom = 0.1
	}
	if c.MinShare <= 0 {
		c.MinShare = 0.01
	}
	return c
}

// AdjustmentFunc is notified when system-initiated adaptation changes a
// process's contract (old and new shares). The AQoS broker uses this to
// learn that RM-level adaptation took place.
type AdjustmentFunc func(pid PID, oldShare, newShare float64)

// Scheduler is a multiprocessor DSRT instance. It is safe for concurrent
// use.
type Scheduler struct {
	cfg      Config
	onAdjust AdjustmentFunc

	mu     sync.Mutex
	nextID PID
	procs  map[PID]*Process

	// faults injects admission failures; nil injects nothing. Set at
	// assembly time, before the scheduler serves requests.
	faults *faultx.Injector
}

// InjectFaults installs a fault injector on process admission (site
// "dsrt.register"). Call at assembly time.
func (s *Scheduler) InjectFaults(inj *faultx.Injector) { s.faults = inj }

// New returns a scheduler with the given configuration.
func New(cfg Config, onAdjust AdjustmentFunc) *Scheduler {
	return &Scheduler{cfg: cfg.withDefaults(), onAdjust: onAdjust, procs: make(map[PID]*Process)}
}

// Capacity returns the total reservable CPU share.
func (s *Scheduler) Capacity() float64 {
	return float64(s.cfg.Processors) * s.cfg.UtilBound
}

// Reserved returns the sum of all contracted shares.
func (s *Scheduler) Reserved() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reservedLocked()
}

func (s *Scheduler) reservedLocked() float64 {
	total := 0.0
	for _, p := range s.procs {
		total += p.Contract.Share
	}
	return total
}

// Register admits a new process under the given contract, returning its
// PID. The admission test requires the total of all shares to stay within
// Capacity.
func (s *Scheduler) Register(c Contract) (PID, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if err := s.faults.Do("dsrt.register", func() error { return nil }); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reservedLocked()+c.Share > s.Capacity()+1e-9 {
		return 0, fmt.Errorf("%w: reserved %.3f + %.3f > capacity %.3f",
			ErrAdmission, s.reservedLocked(), c.Share, s.Capacity())
	}
	s.nextID++
	pid := s.nextID
	s.procs[pid] = &Process{PID: pid, Contract: c}
	return pid, nil
}

// Unregister releases a process's reservation.
func (s *Scheduler) Unregister(pid PID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.procs[pid]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPID, pid)
	}
	delete(s.procs, pid)
	return nil
}

// SetShare changes a process's contracted share explicitly (broker-driven
// re-negotiation), running the admission test.
func (s *Scheduler) SetShare(pid PID, share float64) error {
	if share <= 0 || share > 1 {
		return fmt.Errorf("dsrt: share %g outside (0, 1]", share)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownPID, pid)
	}
	others := s.reservedLocked() - p.Contract.Share
	if others+share > s.Capacity()+1e-9 {
		return fmt.Errorf("%w: %.3f + %.3f > %.3f", ErrAdmission, others, share, s.Capacity())
	}
	p.Contract.Share = share
	return nil
}

// ReportUsage records one period's observed CPU consumption (fraction of
// one CPU) for the process and performs system-initiated adaptation for
// PVPT/Aperiodic processes: the contract share converges toward "just
// enough" — observed average usage plus headroom — never exceeding the
// original bound of 1.0 and never below MinShare, and only when the change
// passes the admission test (growing) or is a genuine shrink.
func (s *Scheduler) ReportUsage(pid PID, usage float64) error {
	if usage < 0 {
		return fmt.Errorf("dsrt: negative usage %g", usage)
	}
	var adjust func()
	s.mu.Lock()
	p, ok := s.procs[pid]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownPID, pid)
	}
	if p.Reports == 0 {
		p.AvgUsage = usage
	} else {
		p.AvgUsage = s.cfg.Alpha*usage + (1-s.cfg.Alpha)*p.AvgUsage
	}
	p.Reports++

	if p.Contract.Class != PeriodicConstant {
		target := math.Min(1.0, math.Max(s.cfg.MinShare, p.AvgUsage*(1+s.cfg.Headroom)))
		old := p.Contract.Share
		if math.Abs(target-old) > 0.01 { // dead-band to avoid churn
			grow := target - old
			if grow <= 0 || s.reservedLocked()+grow <= s.Capacity()+1e-9 {
				p.Contract.Share = target
				if s.onAdjust != nil {
					pidCopy, oldCopy, newCopy := pid, old, target
					adjust = func() { s.onAdjust(pidCopy, oldCopy, newCopy) }
				}
			}
		}
	}
	s.mu.Unlock()
	if adjust != nil {
		adjust() // callback outside the lock
	}
	return nil
}

// Get returns a copy of the process record.
func (s *Scheduler) Get(pid PID) (Process, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.procs[pid]
	if !ok {
		return Process{}, fmt.Errorf("%w: %d", ErrUnknownPID, pid)
	}
	return *p, nil
}

// Processes returns copies of all process records ordered by PID.
func (s *Scheduler) Processes() []Process {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Process, 0, len(s.procs))
	for _, p := range s.procs {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Utilization returns reserved/capacity in [0, 1+].
func (s *Scheduler) Utilization() float64 {
	cap := s.Capacity()
	if cap == 0 {
		return 0
	}
	return s.Reserved() / cap
}

// Instrument registers CPU-reserve gauges on reg. All values are
// computed at scrape time from scheduler state — the reservation path
// itself is untouched.
func (s *Scheduler) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("gqosm_dsrt_cpu_capacity",
		"Total reservable CPU share", s.Capacity)
	reg.GaugeFunc("gqosm_dsrt_cpu_reserved",
		"Sum of contracted CPU shares", s.Reserved)
	reg.GaugeFunc("gqosm_dsrt_cpu_utilization",
		"Reserved fraction of reservable CPU", s.Utilization)
	reg.GaugeFunc("gqosm_dsrt_processes",
		"Processes under CPU contract", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.procs))
		})
}
