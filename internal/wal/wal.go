// Package wal is the broker's durability layer: an append-only lifecycle
// log with length+CRC framed JSON records, periodic snapshots, and log
// truncation once a snapshot lands. The broker journals the absolute
// post-operation state of each touched session (plus the owning shard's
// auxiliary allocator state), so replay is last-write-wins idempotent;
// ledger entries are the one delta-shaped record and carry their own
// sequence fencing (Snapshot.LedgerSeq) so replay never double-bills.
//
// File layout inside a WAL directory:
//
//	wal-<startseq>.wlog   log segments; <startseq> is the first sequence
//	                      number the segment may contain
//	snap-<baseseq>.wsnap  snapshots; replay applies records with
//	                      Seq > <baseseq>
//
// Every append is fsynced before it is acknowledged (the commit sites in
// the broker are exactly the Append calls). Snapshots are written to a
// temp file, fsynced, renamed into place and the directory fsynced, so a
// crash never leaves a half-written snapshot under a valid name. After a
// snapshot lands the log rotates to a fresh segment and every fully
// superseded segment (max sequence ≤ BaseSeq) is deleted.
//
// Decoding never panics: torn tails, bit flips and oversized frames
// surface as the typed errors below, and recovery stops cleanly at the
// first corrupt record, keeping everything before it.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gqosm/internal/faultx"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

// Typed decode errors. Recovery treats any of them on the log tail as
// "the process died mid-write here" and replays everything before it.
var (
	// ErrTruncated marks a frame cut short (torn tail).
	ErrTruncated = errors.New("wal: truncated record")
	// ErrChecksum marks a frame whose payload fails its CRC.
	ErrChecksum = errors.New("wal: record checksum mismatch")
	// ErrTooLarge marks a frame whose declared length exceeds the cap —
	// almost always a corrupted length word.
	ErrTooLarge = errors.New("wal: record exceeds size cap")
	// ErrBadRecord marks a frame whose payload is not a valid record.
	ErrBadRecord = errors.New("wal: malformed record payload")
	// ErrBadMagic marks a file that does not start with the expected
	// format header.
	ErrBadMagic = errors.New("wal: bad file magic")
	// ErrSealed is returned by Append after the log has been sealed
	// (crash simulation or Close).
	ErrSealed = errors.New("wal: log sealed")
)

const (
	logMagic  = "GQWL1\n"
	snapMagic = "GQWS1\n"
	// maxRecord bounds one frame's payload; real records are a few KB.
	maxRecord = 4 << 20

	logSuffix  = ".wlog"
	snapSuffix = ".wsnap"

	// DefSnapshotEvery is the default snapshot cadence in records.
	DefSnapshotEvery = 256

	// Fault-injection site names for the two commit points.
	SiteAppend = "wal.append"
	SiteSync   = "wal.sync"
)

// BEGrant is one best-effort allocation row of a shard's allocator.
type BEGrant struct {
	User    string
	Granted resource.Capacity
	Seq     int
}

// ShardAux is the auxiliary allocator state of one shard that cannot be
// rebuilt from session documents alone: failed capacity, the best-effort
// table, and the preemption-order counter.
type ShardAux struct {
	Shard      int
	Offline    resource.Capacity
	BestEffort []BEGrant `json:",omitempty"`
	NextSeq    int
}

// SessionRecord is the absolute post-operation state of one session:
// the full SLA document plus the broker-internal fields replay needs.
type SessionRecord struct {
	Shard      int
	Doc        *sla.Document
	Handle     string
	Job        string `json:",omitempty"`
	Original   resource.Capacity
	Degraded   bool      `json:",omitempty"`
	Violations int       `json:",omitempty"`
	ProposedAt time.Time `json:",omitempty"`
}

// LedgerEntry mirrors one pricing ledger entry. Unlike session records
// it is a delta: replay applies it only when its record sequence is past
// the snapshot's LedgerSeq fence.
type LedgerEntry struct {
	Kind   int
	SLA    string
	Amount float64
	At     time.Time
	Note   string `json:",omitempty"`
}

// Record is one framed log entry. Exactly the fields relevant to the
// journaled operation are set; replay applies whichever are present.
type Record struct {
	Seq uint64
	At  time.Time
	Op  string

	// Session carries the touched session's full post-op state.
	Session *SessionRecord `json:",omitempty"`
	// Aux carries the touched shard's auxiliary allocator state.
	Aux *ShardAux `json:",omitempty"`
	// BERoute is the full best-effort pin table (client → shard index);
	// HasBERoute distinguishes "now empty" from "not recorded".
	BERoute    map[string]int `json:",omitempty"`
	HasBERoute bool           `json:",omitempty"`
	// Pending is the full parked-cancel table (SLA ID → GARA handle).
	Pending    map[string]string `json:",omitempty"`
	HasPending bool              `json:",omitempty"`
	// Handoffs is the full session hand-off intent table (SLA ID →
	// "out:<peer>" / "in:<peer>"); HasHandoffs distinguishes "now empty"
	// from "not recorded". Intents journal before the cross-broker step
	// they describe, so a crash mid-migration recovers to exactly one
	// owner (see core/handoff.go).
	Handoffs    map[string]string `json:",omitempty"`
	HasHandoffs bool              `json:",omitempty"`
	// Ledger is one accounting delta.
	Ledger *LedgerEntry `json:",omitempty"`
	// Prune lists session IDs removed by terminal-state pruning; replay
	// must forget them rather than resurrect them from older records.
	Prune []string `json:",omitempty"`
	// NextID is the SLA counter high-water mark (0 = not recorded).
	NextID int64 `json:",omitempty"`
}

// LedgerState is the pricing ledger's exported aggregate state.
type LedgerState struct {
	Entries []LedgerEntry `json:",omitempty"`
	Retain  int           `json:",omitempty"`
	Evicted int64         `json:",omitempty"`
	Net     float64
	Totals  map[int]float64 `json:",omitempty"`
}

// ShardSnap is one shard's full state in a snapshot.
type ShardSnap struct {
	Index    int
	Sessions []SessionRecord `json:",omitempty"`
	Aux      ShardAux
}

// Snapshot is a consistent image of the whole broker: replay applies log
// records with Seq > BaseSeq on top of it (ledger records with
// Seq > LedgerSeq — the ledger fence is captured under the ledger lock,
// so an entry is either in Ledger or past the fence, never both).
type Snapshot struct {
	BaseSeq   uint64
	LedgerSeq uint64
	At        time.Time
	NextID    int64
	Shards    []ShardSnap
	BERoute   map[string]int    `json:",omitempty"`
	Pending   map[string]string `json:",omitempty"`
	Handoffs  map[string]string `json:",omitempty"`
	Ledger    LedgerState
}

// Options configures Open.
type Options struct {
	// Dir is the WAL directory (required; created if missing).
	Dir string
	// SnapshotEvery is the snapshot cadence in appended records
	// (default DefSnapshotEvery).
	SnapshotEvery int
	// Faults optionally injects failures at SiteAppend / SiteSync. Any
	// injected failure seals the log — the simulated process died at
	// that commit point — and the in-flight record is rolled back, as a
	// real crash before the fsync would lose it.
	Faults *faultx.Injector
}

// LoadResult reports what Open recovered from the directory.
type LoadResult struct {
	// Snapshot is the latest valid snapshot, nil when none exists.
	Snapshot *Snapshot
	// Records are the replayable log records (Seq > Snapshot.BaseSeq),
	// in sequence order.
	Records []Record
	// Corrupt is the typed error that ended log reading early (nil for
	// a clean tail). Everything before the corruption is in Records.
	Corrupt error
}

// Log is an open WAL: Append journals framed records with an fsync per
// record; WriteSnapshot lands a snapshot, rotates the live segment and
// truncates superseded ones.
type Log struct {
	dir    string
	every  int
	faults *faultx.Injector

	mu        sync.Mutex
	f         *os.File
	size      int64
	seq       uint64 // last assigned sequence number
	sinceSnap int
	sealed    bool
	due       bool

	appends   int64
	syncs     int64
	snapshots int64
}

// HasState reports whether dir holds any WAL state (segments or
// snapshots) — i.e. whether Recover, not a fresh NewBroker, should own
// it.
func HasState(dir string) bool {
	names, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range names {
		if strings.HasSuffix(e.Name(), logSuffix) || strings.HasSuffix(e.Name(), snapSuffix) {
			return true
		}
	}
	return false
}

// Open loads the directory's durable state (latest valid snapshot plus
// the replayable log suffix) and opens a fresh segment for appending,
// continuing the sequence numbering. One call serves both the cold-start
// and the recovery path; the caller decides what to do with the load.
func Open(opts Options) (*Log, *LoadResult, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefSnapshotEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	load, lastSeq, err := loadDir(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: opts.Dir, every: opts.SnapshotEvery, faults: opts.Faults, seq: lastSeq}
	if err := l.rotateLocked(); err != nil {
		return nil, nil, err
	}
	return l, load, nil
}

// loadDir reads the latest valid snapshot and every log record past its
// BaseSeq. It returns the highest sequence number seen anywhere so the
// log can continue numbering past crashes and corrupt tails.
func loadDir(dir string) (*LoadResult, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var snaps, segs []string
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), snapSuffix):
			snaps = append(snaps, e.Name())
		case strings.HasSuffix(e.Name(), logSuffix):
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(snaps)
	sort.Strings(segs)

	res := &LoadResult{}
	// Newest snapshot that decodes cleanly wins; earlier ones are kept
	// on disk only until the next truncation.
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, snaps[i]))
		if err != nil {
			continue
		}
		if s, err := DecodeSnapshot(data); err == nil {
			res.Snapshot = s
			break
		}
	}
	base := uint64(0)
	if res.Snapshot != nil {
		base = res.Snapshot.BaseSeq
	}
	lastSeq := base
	if res.Snapshot != nil && res.Snapshot.LedgerSeq > lastSeq {
		lastSeq = res.Snapshot.LedgerSeq
	}
	for _, name := range segs {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, 0, fmt.Errorf("wal: %s: %w", name, err)
		}
		recs, derr := DecodeLog(data)
		for _, r := range recs {
			if r.Seq > lastSeq {
				lastSeq = r.Seq
			}
			if r.Seq > base {
				res.Records = append(res.Records, r)
			}
		}
		if derr != nil {
			// The first corrupt record ends recovery for this segment —
			// and, because later segments can only hold later writes
			// from a process that died here, for the log as a whole.
			res.Corrupt = derr
			break
		}
	}
	sort.SliceStable(res.Records, func(i, j int) bool { return res.Records[i].Seq < res.Records[j].Seq })
	return res, lastSeq, nil
}

// segmentName renders the segment file for a starting sequence.
func segmentName(startSeq uint64) string {
	return fmt.Sprintf("wal-%016x%s", startSeq, logSuffix)
}

// snapName renders the snapshot file for a base sequence.
func snapName(baseSeq uint64) string {
	return fmt.Sprintf("snap-%016x%s", baseSeq, snapSuffix)
}

// segStart parses the starting sequence out of a segment file name.
func segStart(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, logSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), logSuffix), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// rotateLocked opens a fresh segment starting after the current
// sequence. Callers hold l.mu (or own the log exclusively, in Open).
func (l *Log) rotateLocked() error {
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
	path := filepath.Join(l.dir, segmentName(l.seq+1))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.WriteString(logMagic); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.size = int64(len(logMagic))
	return nil
}

// Append assigns the next sequence number to r, frames it, writes it and
// fsyncs. Any failure — injected or real — rolls the partial write back
// and seals the log: the simulated process died at this commit point,
// and nothing written after a death can exist.
func (l *Log) Append(r Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return 0, ErrSealed
	}
	r.Seq = l.seq + 1
	payload, err := json.Marshal(r)
	if err != nil {
		return 0, fmt.Errorf("wal: encode: %w", err)
	}
	frame := appendFrame(make([]byte, 0, len(payload)+8), payload)

	pre := l.size
	werr := l.do(SiteAppend, func() error {
		n, err := l.f.Write(frame)
		l.size += int64(n)
		return err
	})
	if werr == nil {
		werr = l.do(SiteSync, func() error {
			l.syncs++
			return l.f.Sync()
		})
	}
	if werr != nil {
		// Roll the record back so the on-disk state matches what a real
		// pre-fsync death would have preserved, then seal.
		_ = l.f.Truncate(pre)
		l.size = pre
		l.sealLocked()
		return 0, fmt.Errorf("wal: append seq %d: %w", r.Seq, werr)
	}
	l.seq = r.Seq
	l.appends++
	l.sinceSnap++
	if l.sinceSnap >= l.every {
		// Never snapshot inline: the caller may hold shard or ledger
		// locks the capture needs. The flag is consumed by SnapshotDue.
		l.due = true
	}
	return r.Seq, nil
}

// AppendBatch assigns consecutive sequence numbers to recs, frames them
// all and lands them with a single write + fsync pair — the group-commit
// point: a batch of admissions pays one disk round-trip instead of
// len(recs). Failure semantics match Append: any error — injected or
// real — rolls the whole batch's partial write back and seals the log.
// A real crash between the write and the fsync may still leave a prefix
// of the batch's frames on disk; each frame carries its own CRC, so
// recovery replays exactly that prefix — per-record atomicity is
// unchanged, only the fsync is amortized. It returns the last assigned
// sequence number.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	if len(recs) == 0 {
		return l.LastSeq(), nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return 0, ErrSealed
	}
	seq := l.seq
	frame := make([]byte, 0, 256*len(recs))
	for i := range recs {
		seq++
		recs[i].Seq = seq
		payload, err := json.Marshal(recs[i])
		if err != nil {
			return 0, fmt.Errorf("wal: encode: %w", err)
		}
		frame = appendFrame(frame, payload)
	}

	pre := l.size
	werr := l.do(SiteAppend, func() error {
		n, err := l.f.Write(frame)
		l.size += int64(n)
		return err
	})
	if werr == nil {
		werr = l.do(SiteSync, func() error {
			l.syncs++
			return l.f.Sync()
		})
	}
	if werr != nil {
		_ = l.f.Truncate(pre)
		l.size = pre
		l.sealLocked()
		return 0, fmt.Errorf("wal: append batch seq %d..%d: %w", l.seq+1, seq, werr)
	}
	l.seq = seq
	l.appends += int64(len(recs))
	l.sinceSnap += len(recs)
	if l.sinceSnap >= l.every {
		l.due = true
	}
	return seq, nil
}

// do runs op under the fault injector when one is configured.
func (l *Log) do(site string, op func() error) error {
	if l.faults == nil {
		return op()
	}
	return l.faults.Do(site, op)
}

// SnapshotDue consumes the snapshot-cadence flag: it reports true at
// most once per due snapshot, with no locks the capture path needs held.
func (l *Log) SnapshotDue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	due := l.due
	l.due = false
	return due
}

// LastSeq returns the last assigned sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Sealed reports whether the log refuses further appends.
func (l *Log) Sealed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed
}

// Seal closes the log for appending without flushing anything beyond
// what fsync already made durable — the crash-simulation hook.
func (l *Log) Seal() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sealLocked()
}

func (l *Log) sealLocked() {
	if l.sealed {
		return
	}
	l.sealed = true
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
}

// Stats reports appended records, fsyncs and snapshots landed.
func (l *Log) Stats() (appends, syncs, snapshots int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends, l.syncs, l.snapshots
}

// WriteSnapshot lands s atomically (temp file, fsync, rename, directory
// fsync), rotates the live segment and deletes fully superseded
// segments and older snapshots. The caller provides BaseSeq/LedgerSeq
// consistent with the captured state.
func (l *Log) WriteSnapshot(s *Snapshot) error {
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("wal: encode snapshot: %w", err)
	}
	data := append([]byte(snapMagic), appendFrame(make([]byte, 0, len(payload)+8), payload)...)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return ErrSealed
	}
	final := filepath.Join(l.dir, snapName(s.BaseSeq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	syncDir(l.dir)

	// Rotate so the replay suffix for this snapshot starts in its own
	// segment, then drop everything the snapshot supersedes.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	l.truncateLocked(s.BaseSeq)
	l.sinceSnap = 0
	l.due = false
	l.snapshots++
	return nil
}

// truncateLocked deletes state a recovery can no longer need. One
// snapshot generation is kept back as a fallback against a corrupted
// newest snapshot, so the retained floor is the previous snapshot's
// base, not baseSeq: snapshots older than the previous one go, and so
// do segments whose records are all ≤ that floor (a segment's upper
// bound is the next segment's start − 1, so the live segment is never
// considered).
func (l *Log) truncateLocked(baseSeq uint64) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	var snapSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, snapSuffix) || !strings.HasPrefix(name, "snap-") {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), snapSuffix), 16, 64)
		if err == nil {
			snapSeqs = append(snapSeqs, v)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })
	floor := baseSeq
	if n := len(snapSeqs); n >= 2 {
		floor = snapSeqs[n-2]
	}
	var starts []uint64
	for _, e := range entries {
		if s, ok := segStart(e.Name()); ok {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i := 0; i+1 < len(starts); i++ {
		if starts[i+1]-1 <= floor {
			_ = os.Remove(filepath.Join(l.dir, segmentName(starts[i])))
		}
	}
	for _, v := range snapSeqs {
		if v < floor {
			_ = os.Remove(filepath.Join(l.dir, snapName(v)))
		}
	}
	syncDir(l.dir)
}

// syncDir fsyncs a directory so renames and unlinks are durable; errors
// are ignored (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// appendFrame appends one length+CRC framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeFrame splits one frame off data. A clean end of input returns
// (nil, nil, nil); a partial or corrupt frame returns a typed error.
func decodeFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	if len(data) < 8 {
		return nil, nil, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > maxRecord {
		return nil, nil, ErrTooLarge
	}
	if uint32(len(data)-8) < n {
		return nil, nil, ErrTruncated
	}
	payload = data[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, nil, ErrChecksum
	}
	return payload, data[8+n:], nil
}

// DecodeLog decodes a log file image (magic header plus frames). It
// never panics: it returns every record before the first corruption,
// plus the typed error that stopped it (nil for a clean file).
func DecodeLog(data []byte) ([]Record, error) {
	if len(data) < len(logMagic) || string(data[:len(logMagic)]) != logMagic {
		return nil, ErrBadMagic
	}
	data = data[len(logMagic):]
	var out []Record
	for len(data) > 0 {
		payload, rest, err := decodeFrame(data)
		if err != nil {
			return out, err
		}
		if payload == nil {
			break
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return out, fmt.Errorf("%w: %v", ErrBadRecord, err)
		}
		out = append(out, r)
		data = rest
	}
	return out, nil
}

// DecodeSnapshot decodes a snapshot file image.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, ErrBadMagic
	}
	payload, rest, err := decodeFrame(data[len(snapMagic):])
	if err != nil {
		return nil, err
	}
	if payload == nil {
		return nil, ErrTruncated
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after snapshot frame", ErrBadRecord)
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	return &s, nil
}
