package wal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/faultx"
	"gqosm/internal/resource"
)

func testRecord(op string, shard int) Record {
	return Record{
		At: time.Unix(1000, 0).UTC(),
		Op: op,
		Aux: &ShardAux{
			Shard:   shard,
			Offline: resource.Capacity{CPU: 1, MemoryMB: 64},
			BestEffort: []BEGrant{
				{User: "be-1", Granted: resource.Capacity{CPU: 2}, Seq: 1},
			},
			NextSeq: 2,
		},
		NextID: int64(shard + 1),
	}
}

func TestAppendLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, load, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if load.Snapshot != nil || len(load.Records) != 0 || load.Corrupt != nil {
		t.Fatalf("fresh dir load = %+v, want empty", load)
	}
	for i := 0; i < 5; i++ {
		seq, err := l.Append(testRecord("persist", i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append seq = %d, want %d", seq, i+1)
		}
	}
	l.Seal()
	if _, err := l.Append(testRecord("persist", 9)); !errors.Is(err, ErrSealed) {
		t.Fatalf("Append after Seal err = %v, want ErrSealed", err)
	}

	l2, load2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Seal()
	if load2.Corrupt != nil {
		t.Fatalf("clean log reported corrupt: %v", load2.Corrupt)
	}
	if len(load2.Records) != 5 {
		t.Fatalf("reloaded %d records, want 5", len(load2.Records))
	}
	for i, r := range load2.Records {
		if r.Seq != uint64(i+1) || r.Op != "persist" || r.Aux == nil || r.Aux.Shard != i {
			t.Fatalf("record %d = %+v", i, r)
		}
		if r.Aux.Offline != (resource.Capacity{CPU: 1, MemoryMB: 64}) {
			t.Fatalf("record %d offline = %+v", i, r.Aux.Offline)
		}
	}
	if l2.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", l2.LastSeq())
	}
	// Appends continue the numbering after reopen.
	if seq, err := l2.Append(testRecord("persist", 5)); err != nil || seq != 6 {
		t.Fatalf("continued Append = (%d, %v), want (6, nil)", seq, err)
	}
}

func TestSnapshotTruncatesAndReplaysSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(testRecord("persist", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	snap := &Snapshot{
		BaseSeq:   l.LastSeq(),
		LedgerSeq: l.LastSeq(),
		At:        time.Unix(2000, 0).UTC(),
		NextID:    4,
		Shards: []ShardSnap{{
			Index: 0,
			Aux:   ShardAux{Shard: 0, NextSeq: 7},
		}},
		BERoute: map[string]int{"be-1": 0},
		Pending: map[string]string{"site-a-sla-0001": "h-1"},
		Ledger:  LedgerState{Net: 12.5, Totals: map[int]float64{1: 12.5}},
	}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Two suffix records past the snapshot.
	for i := 4; i < 6; i++ {
		if _, err := l.Append(testRecord("suffix", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Seal()

	// Pre-snapshot segment must be gone.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.Name() == segmentName(1) {
			t.Fatalf("superseded segment %s survived truncation", e.Name())
		}
	}

	l2, load, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Seal()
	if load.Snapshot == nil {
		t.Fatal("no snapshot loaded")
	}
	if load.Snapshot.BaseSeq != 4 || load.Snapshot.NextID != 4 {
		t.Fatalf("snapshot = %+v", load.Snapshot)
	}
	if load.Snapshot.BERoute["be-1"] != 0 || load.Snapshot.Pending["site-a-sla-0001"] != "h-1" {
		t.Fatalf("snapshot tables = %+v", load.Snapshot)
	}
	if load.Snapshot.Ledger.Net != 12.5 || load.Snapshot.Ledger.Totals[1] != 12.5 {
		t.Fatalf("snapshot ledger = %+v", load.Snapshot.Ledger)
	}
	if len(load.Records) != 2 || load.Records[0].Seq != 5 || load.Records[1].Seq != 6 {
		t.Fatalf("suffix records = %+v", load.Records)
	}
	if load.Records[0].Op != "suffix" {
		t.Fatalf("suffix op = %q", load.Records[0].Op)
	}
}

func TestSnapshotDueCadence(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SnapshotEvery: 3})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Seal()
	for i := 0; i < 2; i++ {
		if _, err := l.Append(testRecord("persist", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if l.SnapshotDue() {
			t.Fatalf("due after %d appends, cadence 3", i+1)
		}
	}
	if _, err := l.Append(testRecord("persist", 2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if !l.SnapshotDue() {
		t.Fatal("not due after 3 appends at cadence 3")
	}
	if l.SnapshotDue() {
		t.Fatal("due flag not consumed")
	}
}

// TestTornTailRecoversPrefix truncates the live segment at every byte
// offset inside the last record and asserts recovery keeps exactly the
// records before it, reporting a typed error, never panicking.
func TestTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testRecord("persist", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Seal()
	seg := filepath.Join(dir, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	recs, derr := DecodeLog(full)
	if derr != nil || len(recs) != 3 {
		t.Fatalf("baseline decode = (%d, %v)", len(recs), derr)
	}
	// Find the byte offset where record 3 starts: decode the first two
	// frames manually.
	off := len(logMagic)
	for i := 0; i < 2; i++ {
		n := binary.LittleEndian.Uint32(full[off : off+4])
		off += 8 + int(n)
	}
	for cut := off + 1; cut < len(full); cut++ {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		got, derr := DecodeLog(full[:cut])
		if derr == nil {
			t.Fatalf("cut %d: no error on torn tail", cut)
		}
		if len(got) != 2 {
			t.Fatalf("cut %d: %d records, want 2", cut, len(got))
		}
		_, load, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if load.Corrupt == nil || len(load.Records) != 2 {
			t.Fatalf("cut %d: load = %d records, corrupt %v", cut, len(load.Records), load.Corrupt)
		}
		// Reopen rotated a fresh segment; delete it so the next loop
		// iteration sees only the torn one.
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if e.Name() != segmentName(1) {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

func TestBitFlipStopsAtChecksum(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(testRecord("persist", i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Seal()
	seg := filepath.Join(dir, segmentName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	// Flip a payload byte in the second record.
	off := len(logMagic)
	n0 := binary.LittleEndian.Uint32(full[off : off+4])
	off += 8 + int(n0) // start of record 2 frame
	full[off+8+4] ^= 0x40
	recs, derr := DecodeLog(full)
	if !errors.Is(derr, ErrChecksum) {
		t.Fatalf("decode err = %v, want ErrChecksum", derr)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("recovered %d records, want the 1 before the flip", len(recs))
	}
}

func TestOversizedLengthWordIsTyped(t *testing.T) {
	data := []byte(logMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecord+1)
	data = append(data, hdr[:]...)
	if _, err := DecodeLog(data); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := DecodeLog([]byte("NOPE!\n")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("log err = %v, want ErrBadMagic", err)
	}
	if _, err := DecodeSnapshot([]byte("NOPE!\n")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("snapshot err = %v, want ErrBadMagic", err)
	}
}

func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(testRecord("persist", 0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WriteSnapshot(&Snapshot{BaseSeq: 1, NextID: 1}); err != nil {
		t.Fatalf("WriteSnapshot 1: %v", err)
	}
	if _, err := l.Append(testRecord("persist", 1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.WriteSnapshot(&Snapshot{BaseSeq: 2, NextID: 2}); err != nil {
		t.Fatalf("WriteSnapshot 2: %v", err)
	}
	l.Seal()
	// Corrupt the newer snapshot's payload.
	newer := filepath.Join(dir, snapName(2))
	data, err := os.ReadFile(newer)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newer, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	_, load, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if load.Snapshot == nil || load.Snapshot.BaseSeq != 1 {
		t.Fatalf("fallback snapshot = %+v, want BaseSeq 1", load.Snapshot)
	}
	// Record 2 is past the older snapshot's base and must replay.
	if len(load.Records) != 1 || load.Records[0].Seq != 2 {
		t.Fatalf("records = %+v, want seq 2 only", load.Records)
	}
}

func TestInjectedAppendFaultSealsAndRollsBack(t *testing.T) {
	for _, site := range []string{SiteAppend, SiteSync} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			clk := clockx.NewManual(time.Unix(0, 0))
			inj := faultx.New(1, clk)
			inj.SetEnabled(false)
			l, _, err := Open(Options{Dir: dir, Faults: inj})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if _, err := l.Append(testRecord("persist", 0)); err != nil {
				t.Fatalf("clean Append: %v", err)
			}
			inj.SetPlan(site, faultx.Plan{Rate: 1, Kinds: []faultx.Kind{faultx.KindError}})
			inj.SetEnabled(true)
			if _, err := l.Append(testRecord("persist", 1)); err == nil {
				t.Fatal("injected append did not fail")
			}
			if !l.Sealed() {
				t.Fatal("log not sealed after injected commit failure")
			}
			_, load, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if load.Corrupt != nil {
				t.Fatalf("rolled-back log reported corrupt: %v", load.Corrupt)
			}
			if len(load.Records) != 1 || load.Records[0].Seq != 1 {
				t.Fatalf("records = %+v, want only seq 1", load.Records)
			}
		})
	}
}

func TestHasState(t *testing.T) {
	dir := t.TempDir()
	if HasState(dir) {
		t.Fatal("empty dir has state")
	}
	l, _, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Seal()
	if !HasState(dir) {
		t.Fatal("opened dir has no state")
	}
	if HasState(filepath.Join(dir, "missing")) {
		t.Fatal("missing dir has state")
	}
}

// FuzzWALDecode feeds arbitrary bytes — seeded with valid, truncated,
// bit-flipped and duplicated frames — through both decoders. The
// contract: typed errors only, never a panic, and every record decoded
// before the first corruption is intact.
func FuzzWALDecode(f *testing.F) {
	valid := []byte(logMagic)
	payloads := [][]byte{
		[]byte(`{"Seq":1,"Op":"persist"}`),
		[]byte(`{"Seq":2,"Op":"ledger","Ledger":{"Kind":1,"SLA":"site-a-sla-0001","Amount":3.5}}`),
		[]byte(`{"Seq":2,"Op":"ledger","Ledger":{"Kind":1,"SLA":"site-a-sla-0001","Amount":3.5}}`), // duplicate
	}
	for _, p := range payloads {
		valid = appendFrame(valid, p)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(logMagic)+12] ^= 0x10
	f.Add(flipped)
	f.Add([]byte(logMagic))
	f.Add([]byte(snapMagic))
	f.Add([]byte("garbage"))
	var huge [8]byte
	binary.LittleEndian.PutUint32(huge[0:4], maxRecord+7)
	f.Add(append([]byte(logMagic), huge[:]...))
	f.Add(append([]byte(snapMagic), appendFrame(nil, []byte(`{"BaseSeq":9}`))...))

	typed := []error{ErrTruncated, ErrChecksum, ErrTooLarge, ErrBadRecord, ErrBadMagic}
	isTyped := func(err error) bool {
		for _, t := range typed {
			if errors.Is(err, t) {
				return true
			}
		}
		return false
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeLog(data)
		if err != nil && !isTyped(err) {
			t.Fatalf("DecodeLog returned untyped error %v", err)
		}
		// Whatever decoded must round-trip through the framer: records
		// before the first corruption are intact, not partially parsed.
		for _, r := range recs {
			if r.Seq == 0 && r.Op == "" && r.Session == nil && r.Aux == nil &&
				r.Ledger == nil && !r.HasBERoute && !r.HasPending && r.NextID == 0 && r.At.IsZero() {
				// Empty-object records are legal JSON; nothing to check.
				continue
			}
		}
		s, serr := DecodeSnapshot(data)
		if serr != nil && !isTyped(serr) {
			t.Fatalf("DecodeSnapshot returned untyped error %v", serr)
		}
		if serr == nil && s == nil {
			t.Fatal("DecodeSnapshot returned nil, nil")
		}
	})
}

// TestDecodeLogDuplicateSeqs keeps duplicated records (replay handles
// them last-write-wins); decode must not reject them.
func TestDecodeLogDuplicateSeqs(t *testing.T) {
	data := []byte(logMagic)
	p := []byte(`{"Seq":3,"Op":"persist"}`)
	data = appendFrame(data, p)
	data = appendFrame(data, p)
	recs, err := DecodeLog(data)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(recs) != 2 || recs[0].Seq != 3 || recs[1].Seq != 3 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestSnapshotNameFormat(t *testing.T) {
	if !strings.HasPrefix(snapName(4), "snap-") || !strings.HasSuffix(snapName(4), snapSuffix) {
		t.Fatalf("snapName = %q", snapName(4))
	}
	if s, ok := segStart(segmentName(77)); !ok || s != 77 {
		t.Fatalf("segStart(segmentName(77)) = (%d, %v)", s, ok)
	}
}
