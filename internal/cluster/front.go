// Package cluster is the multi-broker front tier: it routes admissions
// across N broker instances (consistent-hash or least-loaded placement
// over live load reports), falls back across brokers through the
// existing federation fan-out when the placed broker declines, and
// drives session hand-off for rebalancing. With a single slot the front
// degenerates to the plain broker: one federation with zero peers,
// identical outcomes.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"gqosm/internal/core"
	"gqosm/internal/gram"
	"gqosm/internal/sla"
)

// Placement selects the front tier's routing policy.
type Placement int

const (
	// PlaceHash routes each client by consistent hash: a client's
	// admissions land on the same broker run after run, independent of
	// arrival order (the default).
	PlaceHash Placement = iota
	// PlaceLeastLoaded routes each admission to the broker with the
	// lowest reported load factor.
	PlaceLeastLoaded
)

func (p Placement) String() string {
	if p == PlaceLeastLoaded {
		return "least-loaded"
	}
	return "hash"
}

// ParsePlacement parses "hash" or "least-loaded".
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "", "hash":
		return PlaceHash, nil
	case "least-loaded", "leastloaded":
		return PlaceLeastLoaded, nil
	}
	return 0, fmt.Errorf("cluster: unknown placement %q", s)
}

// Config tunes the front tier.
type Config struct {
	// Placement is the routing policy (default PlaceHash).
	Placement Placement
	// HashReplicas is the virtual points per broker on the hash ring
	// (default 64).
	HashReplicas int
	// Policy overrides the routing policy with a custom implementation;
	// nil derives the built-in policy from Placement.
	Policy PlacementPolicy
}

// SlotView describes one cluster member to a PlacementPolicy.
type SlotView struct {
	Index  int
	Domain string
	// Available is false while the slot is recovering; unavailable slots
	// must not be routed to.
	Available bool
}

// PlacementPolicy ranks the slots an admission should try, placed-first.
// Implementations must be deterministic for a given view/load state and
// safe for concurrent use.
type PlacementPolicy interface {
	// Name identifies the policy ("hash", "least-loaded", …).
	Name() string
	// Route returns slot indices in try-order, available slots only.
	// load lazily fetches a slot's reported load factor (false when the
	// slot is unreachable); policies that do not need load — like the
	// consistent-hash default — must not call it, so routing stays free
	// of Load round-trips.
	Route(client string, views []SlotView, load func(int) (float64, bool)) []int
}

// hashPlacement is the PlaceHash default: consistent-hash order, so a
// client's admissions land on the same broker run after run.
type hashPlacement struct{ ring *hashRing }

func (hashPlacement) Name() string { return "hash" }

func (p hashPlacement) Route(client string, views []SlotView, _ func(int) (float64, bool)) []int {
	var order []int
	for _, i := range p.ring.order(client, len(views)) {
		if views[i].Available {
			order = append(order, i)
		}
	}
	return order
}

// leastLoadedPlacement is the PlaceLeastLoaded default: ascending
// reported load factor, ties broken by slot index; slots whose load
// cannot be fetched are skipped.
type leastLoadedPlacement struct{}

func (leastLoadedPlacement) Name() string { return "least-loaded" }

func (leastLoadedPlacement) Route(_ string, views []SlotView, load func(int) (float64, bool)) []int {
	type cand struct {
		load float64
		idx  int
	}
	cands := make([]cand, 0, len(views))
	for _, v := range views {
		if !v.Available {
			continue
		}
		l, ok := load(v.Index)
		if !ok {
			continue
		}
		cands = append(cands, cand{load: l, idx: v.Index})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].load != cands[b].load {
			return cands[a].load < cands[b].load
		}
		return cands[a].idx < cands[b].idx
	})
	order := make([]int, 0, len(cands))
	for _, c := range cands {
		order = append(order, c.idx)
	}
	return order
}

// ErrNoBrokerAvailable is returned when every slot is recovering or
// absent.
var ErrNoBrokerAvailable = errors.New("cluster: no broker available")

// Front is the thin routing tier over the cluster's slots. Safe for
// concurrent use.
type Front struct {
	cfg   Config
	slots []*Slot
	ring  *hashRing
	pol   PlacementPolicy
	byDom map[string]int

	mu     sync.Mutex
	feds   map[int]*fedEntry
	owners map[sla.ID]int
}

// fedEntry caches the federation built around one local slot's broker;
// it is rebuilt when Swap installs a recovered instance.
type fedEntry struct {
	b   *core.Broker
	fed *core.Federation
}

// New assembles a front over the given slots. Domains must be unique;
// slot order is the federation's peer registration order, so it decides
// which broker wins a fallback race.
func New(cfg Config, slots ...*Slot) (*Front, error) {
	if len(slots) == 0 {
		return nil, errors.New("cluster: front needs at least one slot")
	}
	if cfg.HashReplicas <= 0 {
		cfg.HashReplicas = 64
	}
	byDom := make(map[string]int, len(slots))
	domains := make([]string, len(slots))
	for i, s := range slots {
		if _, dup := byDom[s.Domain()]; dup {
			return nil, fmt.Errorf("cluster: duplicate domain %q", s.Domain())
		}
		byDom[s.Domain()] = i
		domains[i] = s.Domain()
	}
	ring := newHashRing(domains, cfg.HashReplicas)
	pol := cfg.Policy
	if pol == nil {
		if cfg.Placement == PlaceLeastLoaded {
			pol = leastLoadedPlacement{}
		} else {
			pol = hashPlacement{ring: ring}
		}
	}
	return &Front{
		cfg:    cfg,
		slots:  slots,
		ring:   ring,
		pol:    pol,
		byDom:  byDom,
		feds:   make(map[int]*fedEntry),
		owners: make(map[sla.ID]int),
	}, nil
}

// PolicyName reports the routing policy in effect.
func (f *Front) PolicyName() string { return f.pol.Name() }

// Slots returns the cluster members in registration order.
func (f *Front) Slots() []*Slot { return f.slots }

// route returns the slot indices to try for a client, placed-first, as
// ranked by the placement policy over a snapshot of slot availability.
// Recovering slots are marked unavailable — the re-route the transient
// peer gate promises. Out-of-range or unavailable indices from a custom
// policy are dropped defensively.
func (f *Front) route(client string) []int {
	views := make([]SlotView, len(f.slots))
	for i, s := range f.slots {
		views[i] = SlotView{Index: i, Domain: s.Domain(), Available: !s.Recovering()}
	}
	ranked := f.pol.Route(client, views, func(i int) (float64, bool) {
		r, err := f.slots[i].Load()
		if err != nil {
			return 0, false
		}
		return r.Load, true
	})
	order := make([]int, 0, len(ranked))
	for _, i := range ranked {
		if i < 0 || i >= len(f.slots) || !views[i].Available {
			continue
		}
		order = append(order, i)
	}
	return order
}

// federationFor returns the cached federation homed on slot idx's local
// broker, with every other slot registered as a peer in ascending slot
// order — so the cross-broker fallback reuses the federation fan-out
// (concurrent peer calls under the home broker's RetryPolicy,
// registration-order first-success, PeerReject retraction) unchanged.
func (f *Front) federationFor(idx int, home *core.Broker) *core.Federation {
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.feds[idx]; ok && e.b == home {
		return e.fed
	}
	fed := core.NewFederation(home)
	for i, s := range f.slots {
		if i == idx {
			continue
		}
		// The only AddPeer failure is a duplicate domain, which New
		// already rejected.
		_ = fed.AddPeer(s)
	}
	f.feds[idx] = &fedEntry{b: home, fed: fed}
	return fed
}

// RequestService admits a request through the cluster: the placed
// broker first, then the federation fallback across the remaining
// slots. The returned offer's Domain names the owning broker; the front
// records it so lifecycle calls route there.
func (f *Front) RequestService(req core.Request) (*core.FederatedOffer, error) {
	order := f.route(req.Client)
	if len(order) == 0 {
		return nil, ErrNoBrokerAvailable
	}
	homeIdx := order[0]
	homeSlot := f.slots[homeIdx]

	var offer *core.FederatedOffer
	if home := homeSlot.Broker(); home != nil {
		o, err := f.federationFor(homeIdx, home).RequestService(req)
		if err != nil {
			return nil, err
		}
		offer = o
	} else {
		// Remote home: walk the placement order first-success. Remote
		// slots cannot host a federation (the fan-out needs the home
		// broker's retry policy), so fallback is sequential here.
		var errs []string
		for _, i := range order {
			o, err := f.slots[i].PeerRequest(req)
			if err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", f.slots[i].Domain(), err))
				continue
			}
			offer = &core.FederatedOffer{Offer: *o, Domain: f.slots[i].Domain(), Forwarded: i != homeIdx}
			break
		}
		if offer == nil {
			return nil, fmt.Errorf("%w: %v", core.ErrNoDomainCanServe, errs)
		}
	}
	if idx, ok := f.byDom[offer.Domain]; ok {
		f.mu.Lock()
		f.owners[offer.SLA.ID] = idx
		f.mu.Unlock()
	}
	return offer, nil
}

// Owner reports which domain hosts a session the front admitted or
// migrated.
func (f *Front) Owner(id sla.ID) (string, bool) {
	f.mu.Lock()
	idx, ok := f.owners[id]
	f.mu.Unlock()
	if !ok {
		return "", false
	}
	return f.slots[idx].Domain(), true
}

// ownerBroker resolves a session to its local broker.
func (f *Front) ownerBroker(id sla.ID) (*core.Broker, int, error) {
	f.mu.Lock()
	idx, ok := f.owners[id]
	f.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", core.ErrUnknownSession, id)
	}
	b := f.slots[idx].Broker()
	if b == nil {
		return nil, 0, fmt.Errorf("cluster: session %s lives on remote slot %q", id, f.slots[idx].Domain())
	}
	return b, idx, nil
}

func (f *Front) forget(id sla.ID) {
	f.mu.Lock()
	delete(f.owners, id)
	f.mu.Unlock()
}

// Accept confirms a proposed SLA on its owning broker.
func (f *Front) Accept(id sla.ID) error {
	b, _, err := f.ownerBroker(id)
	if err != nil {
		return err
	}
	return b.Accept(id)
}

// Reject declines a proposed SLA on its owning broker.
func (f *Front) Reject(id sla.ID) error {
	b, _, err := f.ownerBroker(id)
	if err != nil {
		return err
	}
	if err := b.Reject(id); err != nil {
		return err
	}
	f.forget(id)
	return nil
}

// Invoke launches a session's service on its owning broker.
func (f *Front) Invoke(id sla.ID) (gram.Job, error) {
	b, _, err := f.ownerBroker(id)
	if err != nil {
		return gram.Job{}, err
	}
	return b.Invoke(id)
}

// Terminate clears a session on its owning broker.
func (f *Front) Terminate(id sla.ID, reason string) error {
	b, _, err := f.ownerBroker(id)
	if err != nil {
		return err
	}
	if err := b.Terminate(id, reason); err != nil {
		return err
	}
	f.forget(id)
	return nil
}

// Quiesce waits for every slot federation's background fan-out work
// (slow peer answers, loser retraction) to finish. Harnesses call it
// before a final invariant checkpoint.
func (f *Front) Quiesce() {
	f.mu.Lock()
	feds := make([]*core.Federation, 0, len(f.feds))
	for _, e := range f.feds {
		feds = append(feds, e.fed)
	}
	f.mu.Unlock()
	for _, fed := range feds {
		fed.Quiesce()
	}
}

// Migrate hands session id off to the named target domain: drain on the
// source (BeginHandoff), re-admit under the same SLA ID on the target
// (ImportSession), then tear the source copy down (CompleteHandoff).
// Both sides journal their intent, so a crash at any point recovers to
// exactly one owner (ReconcileHandoffs finishes or aborts the rest).
func (f *Front) Migrate(id sla.ID, target string) error {
	src, srcIdx, err := f.ownerBroker(id)
	if err != nil {
		return err
	}
	tIdx, ok := f.byDom[target]
	if !ok {
		return fmt.Errorf("cluster: unknown target domain %q", target)
	}
	if tIdx == srcIdx {
		return fmt.Errorf("cluster: session %s already lives on %q", id, target)
	}
	tgt := f.slots[tIdx].Broker()
	if tgt == nil {
		return fmt.Errorf("cluster: migration to remote slot %q not supported", target)
	}
	if f.slots[tIdx].Recovering() {
		return fmt.Errorf("%w: slot %q", core.ErrPeerUnavailable, target)
	}

	st, err := src.BeginHandoff(id, target)
	if err != nil {
		return err
	}
	if err := tgt.ImportSession(st); err != nil {
		_ = src.AbortHandoff(id)
		return err
	}
	if err := src.CompleteHandoff(id); err != nil {
		return err
	}
	f.mu.Lock()
	f.owners[id] = tIdx
	f.mu.Unlock()
	return nil
}

// ReconcileHandoffs resolves outbound intents left by crashes: for each
// local slot's open hand-off, the migration is completed when the
// target broker holds the session live (the import committed before the
// crash) and aborted otherwise. Call it after recovering a crashed
// member. Returns how many hand-offs were completed and aborted.
func (f *Front) ReconcileHandoffs() (completed, aborted int) {
	for srcIdx, slot := range f.slots {
		src := slot.Broker()
		if src == nil || slot.Recovering() {
			continue
		}
		outs := src.HandoffsOut()
		ids := make([]sla.ID, 0, len(outs))
		for id := range outs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			target := outs[id]
			tIdx, known := f.byDom[target]
			imported := false
			if known {
				if tb := f.slots[tIdx].Broker(); tb != nil && !f.slots[tIdx].Recovering() {
					if doc, err := tb.Session(id); err == nil && !doc.State.Terminal() {
						imported = true
					}
				}
			}
			if imported {
				if err := src.CompleteHandoff(id); err == nil {
					completed++
					f.mu.Lock()
					f.owners[id] = tIdx
					f.mu.Unlock()
				}
				continue
			}
			if err := src.AbortHandoff(id); err == nil {
				aborted++
				f.mu.Lock()
				f.owners[id] = srcIdx
				f.mu.Unlock()
			}
		}
	}
	return completed, aborted
}

// Rebalance migrates up to max live sessions from the most-loaded local
// broker to the least-loaded one. Degraded and non-settled sessions are
// skipped (hand-off moves healthy capacity, adaptation heals the rest
// in place). Returns how many sessions moved.
func (f *Front) Rebalance(max int) int {
	type cand struct {
		load float64
		idx  int
	}
	var cands []cand
	for i, s := range f.slots {
		if s.Broker() == nil || s.Recovering() {
			continue
		}
		r, err := s.Load()
		if err != nil {
			continue
		}
		cands = append(cands, cand{load: r.Load, idx: i})
	}
	if len(cands) < 2 {
		return 0
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].load != cands[b].load {
			return cands[a].load < cands[b].load
		}
		return cands[a].idx < cands[b].idx
	})
	srcIdx, tgtIdx := cands[len(cands)-1].idx, cands[0].idx
	if srcIdx == tgtIdx {
		return 0
	}
	src := f.slots[srcIdx].Broker()
	target := f.slots[tgtIdx].Domain()

	infos := src.SessionInfos()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	moved := 0
	for _, s := range infos {
		if moved >= max {
			break
		}
		if s.Degraded || (s.State != sla.StateEstablished && s.State != sla.StateActive) {
			continue
		}
		f.mu.Lock()
		f.owners[s.ID] = srcIdx // the session may predate this front
		f.mu.Unlock()
		if err := f.Migrate(s.ID, target); err == nil {
			moved++
		}
	}
	return moved
}

// Loads reports every slot's load (best effort: unreachable slots
// report Recovering with zero load).
func (f *Front) Loads() []core.LoadReport {
	out := make([]core.LoadReport, len(f.slots))
	for i, s := range f.slots {
		r, err := s.Load()
		if err != nil {
			r = core.LoadReport{Domain: s.Domain(), Recovering: true}
		}
		out[i] = r
	}
	return out
}
