package cluster

import (
	"errors"
	"testing"
)

// sloppyPolicy is a custom PlacementPolicy that always prefers a pinned
// slot and pads its answer with garbage indices, proving (a) Config.Policy
// overrides the built-ins end to end and (b) the front defensively drops
// out-of-range and unavailable indices instead of trusting the policy.
type sloppyPolicy struct{ pin int }

func (sloppyPolicy) Name() string { return "sloppy-pin" }

func (p sloppyPolicy) Route(_ string, views []SlotView, _ func(int) (float64, bool)) []int {
	return []int{99, -1, p.pin}
}

func TestFrontCustomPlacementPolicy(t *testing.T) {
	a := member(t, "node-a", 20)
	b := member(t, "node-b", 20)
	front, err := New(Config{Policy: sloppyPolicy{pin: 1}}, NewSlot(a), NewSlot(b))
	if err != nil {
		t.Fatal(err)
	}
	if got := front.PolicyName(); got != "sloppy-pin" {
		t.Fatalf("PolicyName = %q, want sloppy-pin", got)
	}
	for _, client := range []string{"alice", "bob", "carol"} {
		offer, err := front.RequestService(clusterRequest(client, 2))
		if err != nil {
			t.Fatalf("%s: %v", client, err)
		}
		if offer.Domain != "node-b" {
			t.Errorf("%s placed on %q, want node-b (pinned)", client, offer.Domain)
		}
		if err := front.Accept(offer.SLA.ID); err != nil {
			t.Fatalf("accept %s: %v", client, err)
		}
	}
}

// refusalPolicy returns no candidates at all; the front must answer
// ErrNoBrokerAvailable rather than fall back behind the policy's back.
type refusalPolicy struct{}

func (refusalPolicy) Name() string { return "refuse-all" }

func (refusalPolicy) Route(string, []SlotView, func(int) (float64, bool)) []int { return nil }

func TestFrontPolicyMayRefuse(t *testing.T) {
	a := member(t, "node-a", 20)
	front, err := New(Config{Policy: refusalPolicy{}}, NewSlot(a))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := front.RequestService(clusterRequest("alice", 2)); !errors.Is(err, ErrNoBrokerAvailable) {
		t.Fatalf("err = %v, want ErrNoBrokerAvailable", err)
	}
}

// TestFrontDefaultPolicyNames pins the derived names so qosctl and the
// logs stay truthful when no custom policy is installed.
func TestFrontDefaultPolicyNames(t *testing.T) {
	a := member(t, "node-a", 20)
	hash, err := New(Config{}, NewSlot(a))
	if err != nil {
		t.Fatal(err)
	}
	if got := hash.PolicyName(); got != "hash" {
		t.Errorf("default PolicyName = %q, want hash", got)
	}
	b := member(t, "node-b", 20)
	ll, err := New(Config{Placement: PlaceLeastLoaded}, NewSlot(b))
	if err != nil {
		t.Fatal(err)
	}
	if got := ll.PolicyName(); got != "least-loaded" {
		t.Errorf("least-loaded PolicyName = %q, want least-loaded", got)
	}
}
