package cluster

// A Slot is the front tier's view of one broker instance: either a
// local *core.Broker (in-process, as the simulation and tests run them)
// or a remote broker reached through a *core.PeerClient (separate aqosd
// processes). A slot outlives its broker across crash/recovery — the
// front marks it recovering, the operator (or harness) recovers the
// broker, and Swap installs the recovered instance under the same
// domain.

import (
	"fmt"
	"sync"

	"gqosm/internal/core"
	"gqosm/internal/sla"
)

// loadReporter is the optional load half of a peer; *core.Broker and
// *core.PeerClient both implement it.
type loadReporter interface {
	PeerLoad() (core.LoadReport, error)
}

// rejecter mirrors core's retraction interface (exported method, so a
// Slot satisfies core's internal peerRejecter too).
type rejecter interface {
	PeerReject(id sla.ID) error
}

// Slot is one cluster member. Safe for concurrent use.
type Slot struct {
	domain string

	mu         sync.RWMutex
	peer       core.Peer    // *core.Broker or *core.PeerClient
	broker     *core.Broker // non-nil when the instance is in-process
	recovering bool
}

// NewSlot wraps an in-process broker instance.
func NewSlot(b *core.Broker) *Slot {
	return &Slot{domain: b.Domain(), peer: b, broker: b}
}

// NewRemoteSlot wraps a broker reached over SOAP.
func NewRemoteSlot(domain string, c *core.Client) *Slot {
	return &Slot{domain: domain, peer: &core.PeerClient{Domain: domain, Client: c}}
}

// Domain names the slot's administrative domain.
func (s *Slot) Domain() string { return s.domain }

// Broker returns the in-process broker, or nil for remote slots.
func (s *Slot) Broker() *core.Broker {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.broker
}

// MarkRecovering flips the slot's recovering flag: a recovering slot is
// skipped by placement and answers peer requests with
// core.ErrPeerUnavailable (the same transient refusal a mid-Recover
// broker gives), so in-flight fan-outs re-route instead of failing.
func (s *Slot) MarkRecovering(v bool) {
	s.mu.Lock()
	s.recovering = v
	s.mu.Unlock()
}

// Recovering reports the flag (it also reflects a local broker that is
// itself mid-Recover).
func (s *Slot) Recovering() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.recovering {
		return true
	}
	return s.broker != nil && s.broker.Recovering()
}

// Swap installs a recovered broker instance under the slot's domain and
// clears the recovering flag. The instance must carry the same domain.
func (s *Slot) Swap(b *core.Broker) error {
	if b.Domain() != s.domain {
		return fmt.Errorf("cluster: swap of domain %q into slot %q", b.Domain(), s.domain)
	}
	s.mu.Lock()
	s.peer, s.broker, s.recovering = b, b, false
	s.mu.Unlock()
	return nil
}

// PeerDomain implements core.Peer.
func (s *Slot) PeerDomain() string { return s.domain }

// PeerRequest implements core.Peer: a recovering slot refuses with the
// transient gate so the federation's retry policy treats it as a flaky
// wire, not a definitive rejection.
func (s *Slot) PeerRequest(req core.Request) (*core.Offer, error) {
	s.mu.RLock()
	p, rec := s.peer, s.recovering
	s.mu.RUnlock()
	if rec || p == nil {
		return nil, fmt.Errorf("%w: slot %q", core.ErrPeerUnavailable, s.domain)
	}
	return p.PeerRequest(req)
}

// PeerReject retracts a losing offer on the slot's broker.
func (s *Slot) PeerReject(id sla.ID) error {
	s.mu.RLock()
	p := s.peer
	s.mu.RUnlock()
	if r, ok := p.(rejecter); ok {
		return r.PeerReject(id)
	}
	return nil
}

// Load fetches the slot's load report; recovering slots report
// themselves as such without a round trip.
func (s *Slot) Load() (core.LoadReport, error) {
	s.mu.RLock()
	p, rec := s.peer, s.recovering
	s.mu.RUnlock()
	if rec || p == nil {
		return core.LoadReport{Domain: s.domain, Recovering: true},
			fmt.Errorf("%w: slot %q", core.ErrPeerUnavailable, s.domain)
	}
	lr, ok := p.(loadReporter)
	if !ok {
		return core.LoadReport{Domain: s.domain}, fmt.Errorf("cluster: slot %q reports no load", s.domain)
	}
	return lr.PeerLoad()
}

var _ core.Peer = (*Slot)(nil)
