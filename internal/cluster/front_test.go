package cluster

import (
	"errors"
	"testing"
	"time"

	"gqosm/internal/clockx"
	"gqosm/internal/core"
	"gqosm/internal/gara"
	"gqosm/internal/registry"
	"gqosm/internal/resource"
	"gqosm/internal/sla"
)

var (
	ct0 = time.Date(2003, 6, 16, 9, 0, 0, 0, time.UTC)
	ct5 = ct0.Add(5 * time.Hour)
)

// member builds one in-process cluster member: its own pool, GARA and
// registry (the shape a separate aqosd process owns), advertising the
// shared "svc" service.
func member(t *testing.T, domain string, nodes float64) *core.Broker {
	t.Helper()
	clock := clockx.NewManual(ct0)
	pool := resource.NewPool(domain, resource.Nodes(nodes))
	g := gara.NewSystem()
	g.RegisterManager(gara.NewComputeManager(pool))
	reg := registry.New(clock)
	if _, err := reg.Register(registry.Service{
		Name:       "svc",
		Provider:   domain,
		Properties: []registry.Property{registry.NumProp("cpu-nodes", nodes)},
	}); err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBroker(core.Config{
		Domain: domain,
		Clock:  clock,
		Plan: core.CapacityPlan{
			Guaranteed: resource.Nodes(nodes * 0.6),
			Adaptive:   resource.Nodes(nodes * 0.2),
			BestEffort: resource.Nodes(nodes * 0.2),
		},
		Registry:      reg,
		GARA:          g,
		ConfirmWindow: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func clusterRequest(client string, n float64) core.Request {
	return core.Request{
		Service: "svc",
		Client:  client,
		Class:   sla.ClassGuaranteed,
		Spec:    sla.NewSpec(sla.Exact(resource.CPU, n)),
		Start:   ct0,
		End:     ct5,
	}
}

// TestRingDeterministic: the consistent-hash order is a stable,
// complete permutation — the same client maps to the same broker
// sequence on every call and on a freshly built ring.
func TestRingDeterministic(t *testing.T) {
	domains := []string{"node-1", "node-2", "node-3"}
	r1 := newHashRing(domains, 64)
	r2 := newHashRing(domains, 64)
	for _, client := range []string{"alice", "bob", "client-0042", ""} {
		a := r1.order(client, len(domains))
		b := r2.order(client, len(domains))
		if len(a) != len(domains) {
			t.Fatalf("order(%q) = %v, want a full permutation of %d slots", client, a, len(domains))
		}
		seen := make(map[int]bool)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("order(%q) unstable: %v vs %v", client, a, b)
			}
			if seen[a[i]] {
				t.Fatalf("order(%q) repeats slot %d: %v", client, a[i], a)
			}
			seen[a[i]] = true
		}
	}
}

// TestFrontSingleSlotDegenerates: with one slot the front is the plain
// broker — same offers, same refusals, nothing forwarded.
func TestFrontSingleSlotDegenerates(t *testing.T) {
	direct := member(t, "solo", 40)
	fronted := member(t, "solo", 40)
	front, err := New(Config{}, NewSlot(fronted))
	if err != nil {
		t.Fatal(err)
	}

	for i, n := range []float64{5, 10, 100, 9} {
		client := "client"
		dOffer, dErr := direct.RequestService(clusterRequest(client, n))
		fOffer, fErr := front.RequestService(clusterRequest(client, n))
		if (dErr == nil) != (fErr == nil) {
			t.Fatalf("step %d: direct err %v vs front err %v", i, dErr, fErr)
		}
		if dErr != nil {
			continue
		}
		if fOffer.Forwarded || fOffer.Domain != "solo" {
			t.Fatalf("step %d: front offer = %+v, want un-forwarded solo", i, fOffer)
		}
		if dOffer.SLA.ID != fOffer.SLA.ID || !dOffer.SLA.Allocated.Equal(fOffer.SLA.Allocated) {
			t.Fatalf("step %d: offers diverge: %+v vs %+v", i, dOffer.SLA, fOffer.SLA)
		}
		if err := front.Accept(fOffer.SLA.ID); err != nil {
			t.Fatalf("step %d: front Accept: %v", i, err)
		}
		if err := direct.Accept(dOffer.SLA.ID); err != nil {
			t.Fatalf("step %d: direct Accept: %v", i, err)
		}
	}
}

// TestFrontFallbackWhenHomeFull: when the hash-placed broker is out of
// capacity the federation fan-out lands the admission on another member,
// and lifecycle calls follow the offer to the owning broker.
func TestFrontFallbackWhenHomeFull(t *testing.T) {
	a := member(t, "node-a", 20)
	b := member(t, "node-b", 20)
	front, err := New(Config{}, NewSlot(a), NewSlot(b))
	if err != nil {
		t.Fatal(err)
	}

	// Fill the client's hash-home completely, so its next admission must
	// fall back to the other member.
	const client = "fallback-client"
	homeIdx := front.route(client)[0]
	home := front.Slots()[homeIdx]
	other := front.Slots()[1-homeIdx]
	fill, err := home.Broker().RequestService(clusterRequest("filler", 12)) // the whole guaranteed partition
	if err != nil {
		t.Fatalf("filling %s: %v", home.Domain(), err)
	}
	if err := home.Broker().Accept(fill.SLA.ID); err != nil {
		t.Fatal(err)
	}

	offer, err := front.RequestService(clusterRequest(client, 10))
	if err != nil {
		t.Fatalf("RequestService: %v", err)
	}
	if !offer.Forwarded || offer.Domain != other.Domain() {
		t.Fatalf("offer = %+v, want fallback onto %q", offer, other.Domain())
	}
	if owner, ok := front.Owner(offer.SLA.ID); !ok || owner != other.Domain() {
		t.Fatalf("Owner = %q, %v; want %q", owner, ok, other.Domain())
	}
	if err := front.Accept(offer.SLA.ID); err != nil {
		t.Fatalf("Accept via front: %v", err)
	}
	if err := front.Terminate(offer.SLA.ID, "done"); err != nil {
		t.Fatalf("Terminate via front: %v", err)
	}
	if _, ok := front.Owner(offer.SLA.ID); ok {
		t.Error("owner table still tracks the terminated session")
	}
}

// TestFrontSkipsRecoveringSlot: a recovering member takes no new
// placements; with every member recovering the front refuses outright.
func TestFrontSkipsRecoveringSlot(t *testing.T) {
	a := member(t, "node-a", 20)
	b := member(t, "node-b", 20)
	sa, sb := NewSlot(a), NewSlot(b)
	front, err := New(Config{}, sa, sb)
	if err != nil {
		t.Fatal(err)
	}

	const client = "steady-client"
	homeIdx := front.route(client)[0]
	slots := []*Slot{sa, sb}
	slots[homeIdx].MarkRecovering(true)

	offer, err := front.RequestService(clusterRequest(client, 5))
	if err != nil {
		t.Fatalf("RequestService with home recovering: %v", err)
	}
	if offer.Domain != slots[1-homeIdx].Domain() {
		t.Fatalf("offer landed on %q, want the healthy member %q", offer.Domain, slots[1-homeIdx].Domain())
	}

	slots[1-homeIdx].MarkRecovering(true)
	if _, err := front.RequestService(clusterRequest(client, 5)); !errors.Is(err, ErrNoBrokerAvailable) {
		t.Fatalf("err = %v, want ErrNoBrokerAvailable with every member recovering", err)
	}
}

// TestFrontMigrate: a hand-off through the front moves the session and
// its ownership; the source frees its capacity, lifecycle calls land on
// the target, and a second migrate back also works.
func TestFrontMigrate(t *testing.T) {
	a := member(t, "node-a", 20)
	b := member(t, "node-b", 20)
	front, err := New(Config{}, NewSlot(a), NewSlot(b))
	if err != nil {
		t.Fatal(err)
	}

	offer, err := front.RequestService(clusterRequest("mover", 5))
	if err != nil {
		t.Fatal(err)
	}
	id := offer.SLA.ID
	if err := front.Accept(id); err != nil {
		t.Fatal(err)
	}
	srcDom := offer.Domain
	tgtDom := "node-a"
	if srcDom == "node-a" {
		tgtDom = "node-b"
	}
	srcFree := frontBroker(t, front, srcDom).Allocator().AvailableGuaranteed()

	if err := front.Migrate(id, tgtDom); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if owner, _ := front.Owner(id); owner != tgtDom {
		t.Fatalf("Owner = %q, want %q", owner, tgtDom)
	}
	if doc, err := frontBroker(t, front, tgtDom).Session(id); err != nil || doc.State.Terminal() {
		t.Fatalf("target copy = %+v, %v", doc, err)
	}
	if doc, err := frontBroker(t, front, srcDom).Session(id); err != nil && !errors.Is(err, core.ErrUnknownSession) {
		t.Fatal(err)
	} else if err == nil && !doc.State.Terminal() {
		t.Fatalf("source copy still live: %+v", doc)
	}
	// The drained capacity came back (plus the freed 5-node slice).
	gotFree := frontBroker(t, front, srcDom).Allocator().AvailableGuaranteed()
	if gotFree.CPU <= srcFree.CPU {
		t.Errorf("source free CPU %v after migrate, want more than %v", gotFree.CPU, srcFree.CPU)
	}
	// Lifecycle follows the session to its new home.
	if err := front.Terminate(id, "done"); err != nil {
		t.Fatalf("Terminate after migrate: %v", err)
	}
}

func frontBroker(t *testing.T, f *Front, domain string) *core.Broker {
	t.Helper()
	for _, s := range f.Slots() {
		if s.Domain() == domain {
			return s.Broker()
		}
	}
	t.Fatalf("no slot for domain %q", domain)
	return nil
}
