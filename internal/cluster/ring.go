package cluster

// Consistent-hash ring for the front tier's default placement. Each slot
// contributes a fixed number of virtual points (FNV-1a over
// "domain#replica"), and a client key routes to the first point at or
// past its own hash, wrapping around — the classic ring, so adding or
// removing one broker remaps only the keys that landed on its arcs.

import (
	"hash/fnv"
	"sort"
)

type ringPoint struct {
	hash uint64
	slot int
}

type hashRing struct {
	points []ringPoint
}

// newHashRing builds a ring with replicas virtual points per domain.
// Slot order follows the domains slice index.
func newHashRing(domains []string, replicas int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(domains)*replicas)}
	for i, d := range domains {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(d + "#" + itoa(v)), slot: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].slot < r.points[b].slot
	})
	return r
}

// order returns every distinct slot in ring order starting from key's
// position: the first entry is the key's home, the rest are the
// fallback sequence a re-route walks.
func (r *hashRing) order(key string, slots int) []int {
	out := make([]int, 0, slots)
	if len(r.points) == 0 {
		return out
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, slots)
	for i := 0; i < len(r.points) && len(out) < slots; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.slot] {
			seen[p.slot] = true
			out = append(out, p.slot)
		}
	}
	return out
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// itoa avoids strconv for the tiny replica counter.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
