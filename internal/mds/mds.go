// Package mds is a from-scratch stand-in for the Globus Monitoring and
// Discovery Service (MDS) information service the paper's SLA-Verif
// component queries for CPU QoS levels (§3.2: "The SLA-Verif obtains QoS
// levels from both the NRM, for network resources, and the Globus
// information service (MDS) for CPU QoS" … "uses the … MDS APIs to
// periodically retrieve QoS data").
//
// The model mirrors MDS-2's GRIS/GIIS split: resource-level providers
// publish live attribute sets under a name (GRIS), and directories can be
// mounted into parent directories to form an aggregate index (GIIS).
package mds

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Attributes is one provider's published status: attribute name → value.
// Values are strings on the wire (as in LDAP-backed MDS); numeric helpers
// are provided.
type Attributes map[string]string

// Num returns the attribute parsed as a float, or def when absent or
// malformed.
func (a Attributes) Num(key string, def float64) float64 {
	s, ok := a[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return def
	}
	return v
}

// Clone returns a copy of the attribute set.
func (a Attributes) Clone() Attributes {
	out := make(Attributes, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// ProviderFunc supplies a provider's current attributes when polled. It
// must be safe for concurrent use.
type ProviderFunc func() Attributes

// Directory errors.
var (
	// ErrNotFound is returned for unknown entry names.
	ErrNotFound = errors.New("mds: entry not found")
	// ErrDuplicate is returned when registering an existing name.
	ErrDuplicate = errors.New("mds: entry already registered")
)

// Directory is an information-service index. It is safe for concurrent
// use.
type Directory struct {
	mu     sync.Mutex
	local  map[string]ProviderFunc
	mounts map[string]*Directory
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		local:  make(map[string]ProviderFunc),
		mounts: make(map[string]*Directory),
	}
}

// Register publishes a provider under name.
func (d *Directory) Register(name string, f ProviderFunc) error {
	if name == "" || f == nil {
		return errors.New("mds: name and provider required")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.local[name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	d.local[name] = f
	return nil
}

// Unregister removes a provider.
func (d *Directory) Unregister(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.local[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(d.local, name)
	return nil
}

// Mount attaches a child directory under prefix; queries for
// "prefix/rest" route to the child as "rest" (the GIIS aggregation
// pattern).
func (d *Directory) Mount(prefix string, child *Directory) error {
	if prefix == "" || strings.Contains(prefix, "/") || child == nil {
		return errors.New("mds: mount prefix must be a single non-empty path segment")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.mounts[prefix]; ok {
		return fmt.Errorf("%w: mount %s", ErrDuplicate, prefix)
	}
	d.mounts[prefix] = child
	return nil
}

// Query polls the provider registered under name (possibly through
// mounts) and returns a copy of its current attributes.
func (d *Directory) Query(name string) (Attributes, error) {
	if prefix, rest, ok := strings.Cut(name, "/"); ok {
		d.mu.Lock()
		child, found := d.mounts[prefix]
		d.mu.Unlock()
		if !found {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return child.Query(rest)
	}
	d.mu.Lock()
	f, ok := d.local[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	attrs := f()
	if attrs == nil {
		return Attributes{}, nil
	}
	return attrs.Clone(), nil
}

// Entry is a search result.
type Entry struct {
	Name  string
	Attrs Attributes
}

// Search polls every provider (including mounted directories, with
// prefixed names) and returns entries satisfying the filter (nil matches
// all), sorted by name.
func (d *Directory) Search(filter func(Entry) bool) []Entry {
	var out []Entry
	d.mu.Lock()
	names := make([]string, 0, len(d.local))
	for name := range d.local {
		names = append(names, name)
	}
	mounts := make(map[string]*Directory, len(d.mounts))
	for p, c := range d.mounts {
		mounts[p] = c
	}
	d.mu.Unlock()

	for _, name := range names {
		attrs, err := d.Query(name)
		if err != nil {
			continue // unregistered concurrently
		}
		e := Entry{Name: name, Attrs: attrs}
		if filter == nil || filter(e) {
			out = append(out, e)
		}
	}
	for prefix, child := range mounts {
		for _, e := range child.Search(nil) {
			e.Name = prefix + "/" + e.Name
			if filter == nil || filter(e) {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns all local and mounted entry names, sorted.
func (d *Directory) Names() []string {
	entries := d.Search(nil)
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}
