package mds

import (
	"errors"
	"strconv"
	"sync"
	"testing"
)

func staticProvider(a Attributes) ProviderFunc {
	return func() Attributes { return a }
}

func TestRegisterQuery(t *testing.T) {
	d := NewDirectory()
	err := d.Register("sgi-site-a", staticProvider(Attributes{
		"cpu-total": "26", "cpu-free": "16", "os": "linux",
	}))
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	attrs, err := d.Query("sgi-site-a")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if attrs["os"] != "linux" {
		t.Errorf("os = %q", attrs["os"])
	}
	if got := attrs.Num("cpu-free", -1); got != 16 {
		t.Errorf("cpu-free = %g", got)
	}
	if got := attrs.Num("missing", -1); got != -1 {
		t.Errorf("missing = %g", got)
	}
	if got := attrs.Num("os", -1); got != -1 {
		t.Errorf("non-numeric = %g", got)
	}
	if _, err := d.Query("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Query ghost err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	d := NewDirectory()
	if err := d.Register("", staticProvider(nil)); err == nil {
		t.Error("empty name accepted")
	}
	if err := d.Register("x", nil); err == nil {
		t.Error("nil provider accepted")
	}
	if err := d.Register("x", staticProvider(nil)); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("x", staticProvider(nil)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	if attrs, err := d.Query("x"); err != nil || len(attrs) != 0 {
		t.Errorf("nil-attrs provider Query = %v, %v", attrs, err)
	}
	if err := d.Unregister("x"); err != nil {
		t.Fatal(err)
	}
	if err := d.Unregister("x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Unregister err = %v", err)
	}
}

func TestQueryIsLive(t *testing.T) {
	// MDS providers publish *live* status: each poll sees current state.
	d := NewDirectory()
	var (
		mu   sync.Mutex
		free = 16
	)
	if err := d.Register("pool", func() Attributes {
		mu.Lock()
		defer mu.Unlock()
		return Attributes{"cpu-free": strconv.Itoa(free)}
	}); err != nil {
		t.Fatal(err)
	}
	a1, _ := d.Query("pool")
	mu.Lock()
	free = 4
	mu.Unlock()
	a2, _ := d.Query("pool")
	if a1.Num("cpu-free", 0) != 16 || a2.Num("cpu-free", 0) != 4 {
		t.Errorf("live polling broken: %v then %v", a1, a2)
	}
}

func TestQueryReturnsCopy(t *testing.T) {
	base := Attributes{"k": "v"}
	d := NewDirectory()
	if err := d.Register("p", staticProvider(base)); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Query("p")
	got["k"] = "mutated"
	if base["k"] != "v" {
		t.Error("Query leaked the provider's map")
	}
}

func TestMountHierarchy(t *testing.T) {
	// GIIS-style aggregation: the site directory mounts per-resource
	// directories.
	child := NewDirectory()
	if err := child.Register("cpu", staticProvider(Attributes{"free": "10"})); err != nil {
		t.Fatal(err)
	}
	root := NewDirectory()
	if err := root.Mount("site-a", child); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	attrs, err := root.Query("site-a/cpu")
	if err != nil {
		t.Fatalf("Query through mount: %v", err)
	}
	if attrs.Num("free", 0) != 10 {
		t.Errorf("attrs = %v", attrs)
	}
	if _, err := root.Query("site-b/cpu"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown mount err = %v", err)
	}
	if _, err := root.Query("site-a/gone"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown child entry err = %v", err)
	}
	if err := root.Mount("site-a", child); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate mount err = %v", err)
	}
	for _, bad := range []string{"", "a/b"} {
		if err := root.Mount(bad, child); err == nil {
			t.Errorf("Mount(%q) accepted", bad)
		}
	}
	if err := root.Mount("ok", nil); err == nil {
		t.Error("Mount(nil) accepted")
	}
}

func TestNestedMounts(t *testing.T) {
	leaf := NewDirectory()
	if err := leaf.Register("pool", staticProvider(Attributes{"free": "3"})); err != nil {
		t.Fatal(err)
	}
	mid := NewDirectory()
	if err := mid.Mount("cluster", leaf); err != nil {
		t.Fatal(err)
	}
	root := NewDirectory()
	if err := root.Mount("grid", mid); err != nil {
		t.Fatal(err)
	}
	attrs, err := root.Query("grid/cluster/pool")
	if err != nil || attrs.Num("free", 0) != 3 {
		t.Fatalf("nested Query = %v, %v", attrs, err)
	}
}

func TestSearch(t *testing.T) {
	d := NewDirectory()
	for name, free := range map[string]string{"a": "2", "b": "20", "c": "8"} {
		if err := d.Register(name, staticProvider(Attributes{"cpu-free": free})); err != nil {
			t.Fatal(err)
		}
	}
	child := NewDirectory()
	if err := child.Register("big", staticProvider(Attributes{"cpu-free": "64"})); err != nil {
		t.Fatal(err)
	}
	if err := d.Mount("remote", child); err != nil {
		t.Fatal(err)
	}

	all := d.Search(nil)
	if len(all) != 4 {
		t.Fatalf("Search(nil) = %d entries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("Search not sorted")
		}
	}
	rich := d.Search(func(e Entry) bool { return e.Attrs.Num("cpu-free", 0) >= 10 })
	if len(rich) != 2 || rich[0].Name != "b" || rich[1].Name != "remote/big" {
		t.Fatalf("filtered Search = %v", rich)
	}
	names := d.Names()
	if len(names) != 4 || names[3] != "remote/big" {
		t.Fatalf("Names = %v", names)
	}
}

func TestAttributesClone(t *testing.T) {
	a := Attributes{"x": "1"}
	c := a.Clone()
	c["x"] = "2"
	if a["x"] != "1" {
		t.Error("Clone shares map")
	}
}
